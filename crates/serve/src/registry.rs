//! The model registry: named, versioned models with safe rollout.
//!
//! A [`ServePool`] serves exactly one *live* model plus any number of
//! explicitly routed ones; this module owns where those models come from
//! and how they are allowed to reach traffic. Every candidate follows the
//! same path (DESIGN.md §15):
//!
//! ```text
//! load_file ──▶ Loaded ──▶ Smoked ──▶ Shadow ──▶ Live ──▶ Draining ──▶ Retired
//!    │            │                      │
//!    ▼ (typed     ▼ (parity smoke        ▼ (canary rollback / stop_shadow
//!      reject)      reject)                → back to Smoked)
//! ```
//!
//! * **Loading is paranoid.** Candidate weights come from CRC-verified
//!   PLTW files; a truncated file, a flipped bit, or a checkpoint from the
//!   wrong architecture is a typed [`RegistryError`] and a typed rejection
//!   counter — never a panic, and never an eviction of the model currently
//!   serving.
//! * **Eligibility is earned.** A loaded candidate is compiled once and
//!   *parity-smoked*: the compiled plan must agree with the eager reference
//!   (the same `|a-b|/(1+|a|)` bounds the compiler's own parity suites
//!   use) before the registry will route, shadow, or swap it.
//! * **Swaps are atomic and off the hot path.** [`ModelRegistry::hot_swap`]
//!   flips the pool's live slot under its lock (`ServePool::swap_live` —
//!   the single flip point, gated in CI); workers notice the epoch bump at
//!   their next batch, fork the new plan, and drop the old one. In-flight
//!   batches finish on the engine they started on; nothing is dropped.
//! * **Shadow costs nothing it shouldn't.** A shadow candidate mirrors a
//!   deterministic fraction of default traffic (keyed to the batch
//!   sequence, so runs replay), its detections are diffed bit-exactly into
//!   observability counters, and neither its answers nor its failures ever
//!   reach a client or the circuit breaker.
//! * **The canary is conservative.** [`ModelRegistry::evaluate_canary`]
//!   promotes only a quiet shadow; disagreement, shadow errors, or an open
//!   circuit breaker roll the candidate back — the pool keeps re-forking
//!   the *incumbent*, never the candidate, exactly as the breaker's
//!   recovery probe expects.
//!
//! Failure injection for all of this lives on the same deterministic
//! [`ServeFaultPlan`] the pool uses, keyed by load attempt
//! (`ServeFaultPlan::at_swap`).

use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use platter_obs::{metric_label, Counter, MetricsRegistry, MetricsSnapshot};
use platter_tensor::parity::{output_error, QUANT_TOL_MEAN, QUANT_TOL_WORST};
use platter_tensor::serialize::{Bytes, WeightError};
use platter_tensor::{DType, PlanWeights, QuantError, Tensor};
use platter_yolo::{CompiledModel, YoloConfig, Yolov4};
use serde::Serialize;

use crate::fault::{ServeFault, ServeFaultPlan};
use crate::pool::ServePool;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One named, versioned, *compiled* model: everything the pool needs to
/// serve it (master engine to fork, weight snapshot for eager replicas,
/// decode config) plus its identity (name, version, weight fingerprint).
///
/// Entries are immutable once built and shared behind `Arc`: the live
/// slot, routes, the shadow slot, worker caches, and the registry record
/// all hold the same allocation, so `Arc::strong_count` is an honest
/// "who can still execute this model" census — the retirement check.
pub(crate) struct ModelEntry {
    name: String,
    version: u64,
    /// Pre-sanitized metric segment, `{name}-v{version}` — the label under
    /// `serve.model.{label}.*`.
    label: String,
    cfg: YoloConfig,
    /// Weight snapshot for eager fallback replicas.
    weights: Bytes,
    /// Master compiled engine; workers fork it.
    engine: CompiledModel,
}

impl ModelEntry {
    pub(crate) fn from_model(name: &str, version: u64, model: &Yolov4) -> ModelEntry {
        ModelEntry {
            name: name.to_string(),
            version,
            label: format!("{}-v{}", metric_label(name), version),
            cfg: model.config.clone(),
            weights: model.save(),
            engine: model.compile_inference(),
        }
    }

    /// Like [`ModelEntry::from_model`], but the master engine is the INT8
    /// path from [`Yolov4::compile_inference_quantized`], calibrated on
    /// `calibration`. The eager-fallback weight snapshot stays f32 (eager
    /// replicas exist for reference answers, not throughput).
    pub(crate) fn from_model_quantized(
        name: &str,
        version: u64,
        model: &Yolov4,
        calibration: &[Tensor],
    ) -> Result<ModelEntry, QuantError> {
        Ok(ModelEntry {
            name: name.to_string(),
            version,
            label: format!("{}-v{}", metric_label(name), version),
            cfg: model.config.clone(),
            weights: model.save(),
            engine: model.compile_inference_quantized(calibration)?,
        })
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn version(&self) -> u64 {
        self.version
    }

    pub(crate) fn label(&self) -> &str {
        &self.label
    }

    pub(crate) fn cfg(&self) -> &YoloConfig {
        &self.cfg
    }

    pub(crate) fn input_size(&self) -> usize {
        self.cfg.input_size
    }

    /// Content identity of the folded weights (two entries with equal
    /// fingerprints answer bit-identically). The fingerprint mixes the
    /// weight dtype, so an f32 and an i8 build of the same checkpoint are
    /// distinct manifest identities.
    pub(crate) fn fingerprint(&self) -> u64 {
        self.engine.weights_fingerprint()
    }

    /// Numeric format of the compiled engine's weights ([`DType::I8`] for
    /// quantized entries).
    pub(crate) fn dtype(&self) -> DType {
        self.engine.dtype()
    }

    /// Fork a private executor off the master engine (shares plan +
    /// weights, owns only scratch).
    pub(crate) fn fork_engine(&self) -> CompiledModel {
        self.engine.fork_worker()
    }

    /// Build an eager reference replica from the weight snapshot. The
    /// snapshot was produced from a model of this exact config, so a
    /// strict load cannot fail.
    pub(crate) fn eager_replica(&self) -> Yolov4 {
        Yolov4::from_weights(self.cfg.clone(), &self.weights)
            .expect("entry weight snapshot matches its own config")
    }

    pub(crate) fn shared_weights(&self) -> Arc<PlanWeights> {
        self.engine.shared_weights()
    }
}

/// Where a registered model stands on the rollout path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ModelState {
    /// Weights decoded and verified, engine not yet proven.
    Loaded,
    /// Compiled engine passed the parity smoke — eligible for routing,
    /// shadowing, and swapping.
    Smoked,
    /// Mirroring a fraction of live traffic; answers are diffed, never
    /// returned.
    Shadow,
    /// The pool-wide default: new batches fork this model.
    Live,
    /// Swapped out of the live slot; workers may still hold forks until
    /// their next batch.
    Draining,
    /// Fully released — no executor anywhere can reach these weights.
    Retired,
}

impl std::fmt::Display for ModelState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ModelState::Loaded => "loaded",
            ModelState::Smoked => "smoked",
            ModelState::Shadow => "shadow",
            ModelState::Live => "live",
            ModelState::Draining => "draining",
            ModelState::Retired => "retired",
        };
        f.write_str(s)
    }
}

/// Why the registry refused an operation. Every failure mode of the
/// rollout path is typed; none of them disturb whatever is serving.
#[derive(Debug)]
pub enum RegistryError {
    /// The weight file could not be read.
    Io {
        /// Path that failed.
        path: String,
        /// Underlying error text.
        message: String,
    },
    /// The weight buffer was rejected: truncated, CRC mismatch, wrong
    /// format version, or shapes from a different architecture.
    Weights(WeightError),
    /// The compiled engine disagreed with the eager reference beyond the
    /// parity bounds — the candidate must not serve.
    ParityFail {
        /// Worst per-element relative error observed.
        worst: f32,
        /// Worst per-head mean relative error observed.
        mean: f64,
    },
    /// The parity smoke could not even execute the candidate.
    Smoke {
        /// Executor failure text.
        message: String,
    },
    /// The candidate's input size differs from the pool's — it can never
    /// share the pool's admission pipeline.
    WrongInputSize {
        /// Candidate input size.
        model: usize,
        /// Pool input size.
        pool: usize,
    },
    /// The candidate's architecture does not match what the pool was
    /// compiled to serve (different class count means different head
    /// shapes and decode tables) — routing it would answer requests with a
    /// different label space than every other model in the pool.
    Incompatible {
        /// The key that was refused.
        key: String,
        /// Candidate class count.
        model_classes: usize,
        /// Pool class count.
        pool_classes: usize,
    },
    /// The INT8 build of the candidate failed: empty calibration set,
    /// non-finite recorded ranges, or nothing quantizable.
    Quant(QuantError),
    /// No registered model under this key.
    UnknownModel {
        /// The key looked up.
        key: String,
    },
    /// The model exists but its state does not allow the operation (e.g.
    /// swapping a draining model back in).
    NotEligible {
        /// The key operated on.
        key: String,
        /// Its current state.
        state: ModelState,
    },
    /// A model is already registered under this key.
    Duplicate {
        /// The conflicting key.
        key: String,
    },
    /// A shadow operation was requested with no shadow running.
    NoShadow,
    /// Shadow fraction was not a valid `num/den` with `0 < num <= den`.
    BadFraction {
        /// Numerator given.
        num: u64,
        /// Denominator given.
        den: u64,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
            RegistryError::Weights(e) => write!(f, "candidate weights rejected: {e}"),
            RegistryError::ParityFail { worst, mean } => write!(
                f,
                "candidate failed parity smoke: worst rel err {worst:.3e}, mean {mean:.3e}"
            ),
            RegistryError::Smoke { message } => {
                write!(f, "candidate failed to execute its smoke batch: {message}")
            }
            RegistryError::WrongInputSize { model, pool } => {
                write!(f, "candidate input size {model} does not match pool input size {pool}")
            }
            RegistryError::Incompatible { key, model_classes, pool_classes } => write!(
                f,
                "model {key} serves {model_classes} classes but the pool was compiled for {pool_classes}"
            ),
            RegistryError::Quant(e) => write!(f, "candidate failed to quantize: {e}"),
            RegistryError::UnknownModel { key } => write!(f, "no model registered as {key}"),
            RegistryError::NotEligible { key, state } => {
                write!(f, "model {key} is {state}, not eligible for this operation")
            }
            RegistryError::Duplicate { key } => write!(f, "model {key} is already registered"),
            RegistryError::NoShadow => write!(f, "no shadow deployment is running"),
            RegistryError::BadFraction { num, den } => {
                write!(f, "shadow fraction {num}/{den} is not a valid proper fraction")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<WeightError> for RegistryError {
    fn from(e: WeightError) -> RegistryError {
        RegistryError::Weights(e)
    }
}

impl From<QuantError> for RegistryError {
    fn from(e: QuantError) -> RegistryError {
        RegistryError::Quant(e)
    }
}

/// Parity-smoke bounds and batch shape for candidate admission.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Worst-case per-element relative error the smoke tolerates (same
    /// bound as the compiler's parity suites).
    pub parity_worst: f32,
    /// Mean relative error bound.
    pub parity_mean: f64,
    /// Images in the deterministic smoke batch.
    pub smoke_batch: usize,
}

impl Default for RegistryConfig {
    fn default() -> RegistryConfig {
        RegistryConfig { parity_worst: 2e-3, parity_mean: 5e-5, smoke_batch: 2 }
    }
}

/// Thresholds for [`ModelRegistry::evaluate_canary`].
#[derive(Clone, Debug)]
pub struct CanaryConfig {
    /// Shadowed batches required before a promotion can happen (rollbacks
    /// on errors or an open breaker fire immediately).
    pub min_batches: u64,
    /// Largest tolerated fraction of mirrored images whose detections
    /// differ from the incumbent's.
    pub max_disagreement_rate: f64,
    /// Largest tolerated count of shadow execution failures.
    pub max_errors: u64,
}

impl Default for CanaryConfig {
    fn default() -> CanaryConfig {
        CanaryConfig { min_batches: 8, max_disagreement_rate: 0.02, max_errors: 0 }
    }
}

/// Why a canary was rolled back.
#[derive(Clone, Debug, PartialEq)]
pub enum RollbackReason {
    /// Mirrored detections diverged from the incumbent beyond the bound.
    Disagreement {
        /// Observed image-level disagreement rate.
        rate: f64,
    },
    /// The shadow path itself failed (panic, non-finite outputs, executor
    /// error).
    Errors {
        /// Shadow failures observed.
        errors: u64,
    },
    /// The pool's circuit breaker is open: never promote into a degraded
    /// pool — recovery must re-fork the incumbent, not a candidate.
    BreakerOpen,
}

/// Outcome of one canary evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum CanaryDecision {
    /// Not enough shadowed traffic yet; keep mirroring.
    Waiting {
        /// Batches mirrored so far.
        batches: u64,
    },
    /// The candidate was promoted to live; the incumbent is draining.
    Promoted {
        /// Key of the promoted model.
        key: String,
    },
    /// The candidate was taken out of shadow and demoted to `Smoked`.
    RolledBack {
        /// Key of the rejected model.
        key: String,
        /// What tripped the rollback.
        reason: RollbackReason,
    },
}

/// What a completed [`ModelRegistry::hot_swap`] did.
#[derive(Clone, Debug, Serialize)]
pub struct SwapReport {
    /// Key now live.
    pub key: String,
    /// Weight fingerprint now live (mixes the weight dtype).
    pub fingerprint: u64,
    /// Weight dtype now live (`"f32"` or `"i8"`).
    pub dtype: &'static str,
    /// Key of the displaced incumbent, when the registry knew it.
    pub retired: Option<String>,
}

/// Public row of [`ModelRegistry::list`].
#[derive(Clone, Debug, Serialize)]
pub struct ModelInfo {
    /// Registry key, `{name}@v{version}`.
    pub key: String,
    /// Model name.
    pub name: String,
    /// Model version.
    pub version: u64,
    /// Rollout state.
    pub state: ModelState,
    /// Weight fingerprint (0 once retired). Mixes the weight dtype, so the
    /// same checkpoint compiled f32 and i8 has two distinct identities.
    pub fingerprint: u64,
    /// Weight dtype of the compiled engine (`"f32"` or `"i8"`).
    pub dtype: &'static str,
}

struct Record {
    key: String,
    name: String,
    version: u64,
    state: ModelState,
    fingerprint: u64,
    /// Weight dtype of the compiled engine; survives retirement so the
    /// registry's history stays honest after the entry is dropped.
    dtype: &'static str,
    /// Dropped on retirement — the registry must not keep retired weights
    /// alive.
    entry: Option<Arc<ModelEntry>>,
}

/// Typed counters for everything the registry did or refused to do.
struct RegistryMetrics {
    registry: Arc<MetricsRegistry>,
    loads: Arc<Counter>,
    rejected_io: Arc<Counter>,
    rejected_corrupt: Arc<Counter>,
    rejected_incompatible: Arc<Counter>,
    rejected_parity: Arc<Counter>,
    swaps: Arc<Counter>,
    promotions: Arc<Counter>,
    rollbacks: Arc<Counter>,
    retired: Arc<Counter>,
}

impl RegistryMetrics {
    fn new() -> RegistryMetrics {
        let registry = Arc::new(MetricsRegistry::new());
        RegistryMetrics {
            loads: registry.counter("registry.loads"),
            rejected_io: registry.counter("registry.rejected.io"),
            rejected_corrupt: registry.counter("registry.rejected.corrupt"),
            rejected_incompatible: registry.counter("registry.rejected.incompatible"),
            rejected_parity: registry.counter("registry.rejected.parity"),
            swaps: registry.counter("registry.swaps"),
            promotions: registry.counter("registry.promotions"),
            rollbacks: registry.counter("registry.rollbacks"),
            retired: registry.counter("registry.retired"),
            registry,
        }
    }

    /// Bump the typed rejection counter for a load or eligibility failure.
    fn on_reject(&self, e: &RegistryError) {
        match e {
            RegistryError::Io { .. } => self.rejected_io.inc(),
            RegistryError::Weights(WeightError::Incompatible(_))
            | RegistryError::Incompatible { .. } => self.rejected_incompatible.inc(),
            RegistryError::Weights(_) => self.rejected_corrupt.inc(),
            // A quantization failure is a numeric-quality rejection (the
            // calibration pass saw non-finite activations, or nothing could
            // be quantized) — same family as a parity miss.
            RegistryError::ParityFail { .. }
            | RegistryError::Smoke { .. }
            | RegistryError::Quant(_) => self.rejected_parity.inc(),
            _ => {}
        }
    }
}

/// The registry. See the module docs for the rollout model.
pub struct ModelRegistry {
    cfg: RegistryConfig,
    records: Mutex<Vec<Record>>,
    faults: Mutex<ServeFaultPlan>,
    /// Load/swap attempt counter — the key for `at_swap` fault injection.
    attempt_seq: AtomicU64,
    metrics: RegistryMetrics,
}

impl Default for ModelRegistry {
    fn default() -> ModelRegistry {
        ModelRegistry::new(RegistryConfig::default())
    }
}

impl ModelRegistry {
    /// An empty registry with the given smoke bounds.
    pub fn new(cfg: RegistryConfig) -> ModelRegistry {
        ModelRegistry::with_faults(cfg, ServeFaultPlan::new())
    }

    /// Like [`ModelRegistry::new`], with a deterministic swap-fault
    /// schedule (see [`ServeFaultPlan::at_swap`]). Production registries
    /// pass an empty plan.
    pub fn with_faults(cfg: RegistryConfig, faults: ServeFaultPlan) -> ModelRegistry {
        ModelRegistry {
            cfg,
            records: Mutex::new(Vec::new()),
            faults: Mutex::new(faults),
            attempt_seq: AtomicU64::new(0),
            metrics: RegistryMetrics::new(),
        }
    }

    /// The canonical registry key for a name/version pair.
    pub fn key_for(name: &str, version: u64) -> String {
        format!("{name}@v{version}")
    }

    /// Register the pool's current live model (the one it was constructed
    /// with) so later swaps can track it through `Draining` to `Retired`.
    pub fn adopt_live(&self, pool: &ServePool) -> Result<String, RegistryError> {
        let entry = pool.live_entry();
        let key = ModelRegistry::key_for(entry.name(), entry.version());
        let mut records = lock(&self.records);
        if records.iter().any(|r| r.key == key) {
            return Err(RegistryError::Duplicate { key });
        }
        records.push(Record {
            key: key.clone(),
            name: entry.name().to_string(),
            version: entry.version(),
            state: ModelState::Live,
            fingerprint: entry.fingerprint(),
            dtype: entry.dtype().name(),
            entry: Some(entry),
        });
        Ok(key)
    }

    /// Load, verify, compile, and parity-smoke a candidate from a PLTW
    /// weight file. On success the model is registered `Smoked` (eligible
    /// for routing, shadowing, swapping) and its key is returned. Every
    /// failure is a typed error plus a typed rejection counter, and
    /// whatever is currently serving is untouched — the entire load runs
    /// off the hot path.
    pub fn load_file(
        &self,
        name: &str,
        version: u64,
        model_cfg: YoloConfig,
        path: &Path,
    ) -> Result<String, RegistryError> {
        self.load_file_with(name, version, model_cfg, path, None)
    }

    /// Like [`ModelRegistry::load_file`], but the candidate is compiled
    /// through the INT8 path ([`Yolov4::compile_inference_quantized`],
    /// calibrated on `calibration`) and parity-smoked against its f32 eager
    /// reference under the **loosened quantization bounds**
    /// ([`QUANT_TOL_WORST`] / [`QUANT_TOL_MEAN`]) — 8-bit rounding moves
    /// individual elements legitimately, so the f32 smoke bounds would
    /// reject every honest quantized build. Everything else is identical:
    /// CRC-verified load, typed rejections, `Smoked` on success.
    pub fn load_file_quantized(
        &self,
        name: &str,
        version: u64,
        model_cfg: YoloConfig,
        path: &Path,
        calibration: &[Tensor],
    ) -> Result<String, RegistryError> {
        self.load_file_with(name, version, model_cfg, path, Some(calibration))
    }

    fn load_file_with(
        &self,
        name: &str,
        version: u64,
        model_cfg: YoloConfig,
        path: &Path,
        quantize: Option<&[Tensor]>,
    ) -> Result<String, RegistryError> {
        let attempt = self.attempt_seq.fetch_add(1, Ordering::SeqCst);
        let mut corrupt_candidate = false;
        let mut parity_fail = false;
        for fault in lock(&self.faults).take_swap(attempt) {
            match fault {
                ServeFault::CorruptCandidate => corrupt_candidate = true,
                ServeFault::SlowLoad { delay } => std::thread::sleep(delay),
                ServeFault::CandidateParityFail => parity_fail = true,
                // Batch-keyed faults scheduled on the swap sequence have
                // nothing to corrupt here.
                _ => {}
            }
        }
        self.load_file_inner(name, version, model_cfg, path, quantize, corrupt_candidate, parity_fail)
            .inspect(|_| self.metrics.loads.inc())
            .inspect_err(|e| self.metrics.on_reject(e))
    }

    #[allow(clippy::too_many_arguments)]
    fn load_file_inner(
        &self,
        name: &str,
        version: u64,
        model_cfg: YoloConfig,
        path: &Path,
        quantize: Option<&[Tensor]>,
        corrupt_candidate: bool,
        parity_fail: bool,
    ) -> Result<String, RegistryError> {
        let key = ModelRegistry::key_for(name, version);
        if lock(&self.records).iter().any(|r| r.key == key) {
            return Err(RegistryError::Duplicate { key });
        }
        let mut buf = fs::read(path).map_err(|e| RegistryError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        if corrupt_candidate {
            // Injected bit rot between read and decode: the PLTW CRC must
            // catch it.
            let mid = buf.len() / 2;
            if let Some(b) = buf.get_mut(mid) {
                *b ^= 0xff;
            }
        }
        // Strict decode: truncation/bit-flips surface as Malformed/Corrupt,
        // wrong-architecture checkpoints as Incompatible.
        let model = Yolov4::from_weights(model_cfg, &buf)?;
        let entry = Arc::new(match quantize {
            Some(calibration) => {
                ModelEntry::from_model_quantized(name, version, &model, calibration)?
            }
            None => ModelEntry::from_model(name, version, &model),
        });
        {
            // The record exists (Loaded) while the smoke runs; it is removed
            // again if the smoke rejects the candidate.
            let mut records = lock(&self.records);
            records.push(Record {
                key: key.clone(),
                name: name.to_string(),
                version,
                state: ModelState::Loaded,
                fingerprint: entry.fingerprint(),
                dtype: entry.dtype().name(),
                entry: Some(entry.clone()),
            });
        }
        if parity_fail {
            // Injected mis-calibration: perturb the eager reference after
            // the engine folded its weights, so smoke *must* disagree.
            let params = model.parameters();
            if let Some(p) = params.last() {
                let t = p.value();
                let data: Vec<f32> = t.as_slice().iter().map(|v| v + 0.75).collect();
                p.set_value(Tensor::from_vec(data, t.shape()));
            }
        }
        match self.smoke(&entry, &model) {
            Ok(()) => {
                let mut records = lock(&self.records);
                if let Some(r) = records.iter_mut().find(|r| r.key == key) {
                    r.state = ModelState::Smoked;
                }
                Ok(key)
            }
            Err(e) => {
                lock(&self.records).retain(|r| r.key != key);
                Err(e)
            }
        }
    }

    /// Run the candidate's compiled plan against its eager reference on a
    /// deterministic batch and enforce the parity bounds. A quantized
    /// candidate is held to the loosened quantization bounds instead of
    /// the configured f32 bounds — the eager reference is always f32, so
    /// i8 rounding noise is expected and only bulk shifts or non-finite
    /// outputs must reject.
    fn smoke(&self, entry: &ModelEntry, model: &Yolov4) -> Result<(), RegistryError> {
        let (tol_worst, tol_mean) = match entry.dtype() {
            DType::I8 => (QUANT_TOL_WORST, QUANT_TOL_MEAN),
            DType::F32 => (self.cfg.parity_worst, self.cfg.parity_mean),
        };
        let s = entry.input_size();
        let n = self.cfg.smoke_batch.max(1);
        // Deterministic pseudo-random pixels in [0, 1): the smoke must
        // replay bit-identically across runs.
        let data: Vec<f32> = (0..n * 3 * s * s)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761).wrapping_add(12_345) % 1009) as f32 / 1009.0)
            .collect();
        let x = Tensor::from_vec(data, &[n, 3, s, s]);
        let mut fork = entry.fork_engine();
        let compiled = fork
            .try_run(&x)
            .map_err(|e| RegistryError::Smoke { message: e.to_string() })?;
        let eager = model.infer(&x);
        let mut worst = 0f32;
        let mut mean = 0f64;
        for (c, e) in compiled.iter().zip(eager.iter()) {
            let (w, m) = output_error(c, e);
            worst = worst.max(w);
            mean = mean.max(m);
        }
        if worst > tol_worst || mean > tol_mean {
            return Err(RegistryError::ParityFail { worst, mean });
        }
        Ok(())
    }

    /// Expose `key` for per-request routing on `pool`
    /// ([`ServePool::submit_image_to`] and friends). The model keeps its
    /// rollout state; routing does not make it the default.
    pub fn route(&self, pool: &ServePool, key: &str) -> Result<(), RegistryError> {
        let entry = self.eligible_entry(key)?;
        self.check_compatible(&entry, pool, key)?;
        pool.set_route(key, entry);
        Ok(())
    }

    /// Stop routing `key` on `pool`.
    pub fn unroute(&self, pool: &ServePool, key: &str) {
        pool.clear_route(key);
    }

    /// Atomically make `key` the pool-wide default. The old incumbent
    /// moves to `Draining`; call [`ModelRegistry::retire_drained`] once
    /// traffic has moved to release its weights.
    pub fn hot_swap(&self, pool: &ServePool, key: &str) -> Result<SwapReport, RegistryError> {
        let entry = self.eligible_entry(key)?;
        self.check_compatible(&entry, pool, key)?;
        // A model being promoted out of shadow must stop mirroring first.
        if let Some(shadowed) = pool.shadow_entry() {
            if Arc::ptr_eq(&shadowed, &entry) {
                pool.set_shadow(None);
            }
        }
        Ok(self.flip(pool, key, entry))
    }

    /// The single place the live slot changes hands.
    fn flip(&self, pool: &ServePool, key: &str, entry: Arc<ModelEntry>) -> SwapReport {
        let fingerprint = entry.fingerprint();
        let dtype = entry.dtype().name();
        let displaced = pool.swap_live(entry);
        let mut records = lock(&self.records);
        let mut retired_key = None;
        for r in records.iter_mut() {
            if r.key == key {
                r.state = ModelState::Live;
            } else if r.entry.as_ref().is_some_and(|e| Arc::ptr_eq(e, &displaced)) {
                r.state = ModelState::Draining;
                retired_key = Some(r.key.clone());
            }
        }
        drop(records);
        // Drop our handle on the displaced incumbent: from here only its
        // registry record (if adopted) and still-draining workers hold it.
        drop(displaced);
        self.metrics.swaps.inc();
        SwapReport { key: key.to_string(), fingerprint, dtype, retired: retired_key }
    }

    /// Start mirroring `num/den` of the pool's default traffic onto `key`
    /// (deterministically keyed to the batch sequence). Any previous
    /// shadow is demoted back to `Smoked`.
    pub fn start_shadow(
        &self,
        pool: &ServePool,
        key: &str,
        num: u64,
        den: u64,
    ) -> Result<(), RegistryError> {
        if num == 0 || den == 0 || num > den {
            return Err(RegistryError::BadFraction { num, den });
        }
        let entry = self.eligible_entry(key)?;
        self.check_compatible(&entry, pool, key)?;
        let previous = pool.set_shadow(Some((entry, num, den)));
        let mut records = lock(&self.records);
        for r in records.iter_mut() {
            if r.key == key {
                r.state = ModelState::Shadow;
            } else if r.state == ModelState::Shadow
                && previous.as_ref().is_some_and(|p| {
                    r.entry.as_ref().is_some_and(|e| Arc::ptr_eq(e, p))
                })
            {
                r.state = ModelState::Smoked;
            }
        }
        Ok(())
    }

    /// Stop the running shadow (if any) and demote it back to `Smoked`.
    pub fn stop_shadow(&self, pool: &ServePool) -> Result<String, RegistryError> {
        let previous = pool.set_shadow(None).ok_or(RegistryError::NoShadow)?;
        let mut records = lock(&self.records);
        for r in records.iter_mut() {
            if r.entry.as_ref().is_some_and(|e| Arc::ptr_eq(e, &previous)) {
                r.state = ModelState::Smoked;
                return Ok(r.key.clone());
            }
        }
        Err(RegistryError::NoShadow)
    }

    /// Judge the running shadow against `canary` thresholds:
    ///
    /// * shadow errors past the bound, or an **open circuit breaker**,
    ///   roll the candidate back immediately — the pool keeps serving (and
    ///   keeps re-forking, on every breaker probe) the incumbent;
    /// * under `min_batches` mirrored batches the canary keeps waiting;
    /// * a quiet shadow within the disagreement bound is promoted: the
    ///   live slot flips to the candidate and the incumbent drains.
    pub fn evaluate_canary(
        &self,
        pool: &ServePool,
        canary: &CanaryConfig,
    ) -> Result<CanaryDecision, RegistryError> {
        let status = pool.shadow_status().ok_or(RegistryError::NoShadow)?;
        let entry = pool.shadow_entry().ok_or(RegistryError::NoShadow)?;
        let key = {
            let records = lock(&self.records);
            records
                .iter()
                .find(|r| r.entry.as_ref().is_some_and(|e| Arc::ptr_eq(e, &entry)))
                .map(|r| r.key.clone())
                .ok_or(RegistryError::NoShadow)?
        };
        if pool.is_degraded() {
            return Ok(self.roll_back(pool, &key, RollbackReason::BreakerOpen));
        }
        if status.errors > canary.max_errors {
            return Ok(self.roll_back(pool, &key, RollbackReason::Errors { errors: status.errors }));
        }
        if status.batches < canary.min_batches {
            return Ok(CanaryDecision::Waiting { batches: status.batches });
        }
        let rate = status.disagreements as f64 / status.images.max(1) as f64;
        if rate > canary.max_disagreement_rate {
            return Ok(self.roll_back(pool, &key, RollbackReason::Disagreement { rate }));
        }
        pool.set_shadow(None);
        let promoted = {
            let records = lock(&self.records);
            records
                .iter()
                .find(|r| r.key == key)
                .and_then(|r| r.entry.clone())
                .ok_or(RegistryError::UnknownModel { key: key.clone() })?
        };
        let report = self.flip(pool, &key, promoted);
        self.metrics.promotions.inc();
        Ok(CanaryDecision::Promoted { key: report.key })
    }

    fn roll_back(&self, pool: &ServePool, key: &str, reason: RollbackReason) -> CanaryDecision {
        pool.set_shadow(None);
        let mut records = lock(&self.records);
        if let Some(r) = records.iter_mut().find(|r| r.key == key) {
            r.state = ModelState::Smoked;
        }
        drop(records);
        self.metrics.rollbacks.inc();
        CanaryDecision::RolledBack { key: key.to_string(), reason }
    }

    /// Release every `Draining` model no executor can reach any more
    /// (`Arc::strong_count == 1`, i.e. only the registry record holds it):
    /// the entry is dropped, freeing the compiled plan and folded weights,
    /// and the record moves to `Retired`. Returns the retired keys.
    pub fn retire_drained(&self) -> Vec<String> {
        let mut retired = Vec::new();
        let mut records = lock(&self.records);
        for r in records.iter_mut() {
            if r.state != ModelState::Draining {
                continue;
            }
            let drained = r.entry.as_ref().is_some_and(|e| Arc::strong_count(e) == 1);
            if drained {
                r.entry = None;
                r.fingerprint = 0;
                r.state = ModelState::Retired;
                self.metrics.retired.inc();
                retired.push(r.key.clone());
            }
        }
        retired
    }

    /// Current rollout state of `key`.
    pub fn state(&self, key: &str) -> Option<ModelState> {
        lock(&self.records).iter().find(|r| r.key == key).map(|r| r.state)
    }

    /// Every registered model, registration order.
    pub fn list(&self) -> Vec<ModelInfo> {
        lock(&self.records)
            .iter()
            .map(|r| ModelInfo {
                key: r.key.clone(),
                name: r.name.clone(),
                version: r.version,
                state: r.state,
                fingerprint: r.fingerprint,
                dtype: r.dtype,
            })
            .collect()
    }

    /// Snapshot of the registry's typed counters (`registry.loads`,
    /// `registry.rejected.{io,corrupt,incompatible,parity}`,
    /// `registry.{swaps,promotions,rollbacks,retired}`).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.registry.snapshot()
    }

    /// Entry for `key` if it is eligible to touch traffic (smoked or
    /// beyond, not draining/retired).
    fn eligible_entry(&self, key: &str) -> Result<Arc<ModelEntry>, RegistryError> {
        let records = lock(&self.records);
        let r = records
            .iter()
            .find(|r| r.key == key)
            .ok_or_else(|| RegistryError::UnknownModel { key: key.to_string() })?;
        match r.state {
            ModelState::Smoked | ModelState::Shadow | ModelState::Live => r
                .entry
                .clone()
                .ok_or_else(|| RegistryError::UnknownModel { key: key.to_string() }),
            state => Err(RegistryError::NotEligible { key: key.to_string(), state }),
        }
    }

    /// Gate a model against the pool's compiled expectations before it can
    /// touch traffic: input size (the admission pipeline is sized for it)
    /// and class count (the label space clients decode against). A dtype
    /// *difference* is deliberately not a mismatch — promoting an i8 build
    /// into an f32 pool is the whole point of the quantized rollout path.
    /// Failures bump the typed rejection counters
    /// (`registry.rejected.incompatible` for an architecture mismatch).
    fn check_compatible(
        &self,
        entry: &ModelEntry,
        pool: &ServePool,
        key: &str,
    ) -> Result<(), RegistryError> {
        let result = (|| {
            let model = entry.input_size();
            let pool_size = pool.input_size();
            if model != pool_size {
                return Err(RegistryError::WrongInputSize { model, pool: pool_size });
            }
            let model_classes = entry.cfg().num_classes;
            let pool_classes = pool.num_classes();
            if model_classes != pool_classes {
                return Err(RegistryError::Incompatible {
                    key: key.to_string(),
                    model_classes,
                    pool_classes,
                });
            }
            Ok(())
        })();
        result.inspect_err(|e| self.metrics.on_reject(e))
    }
}
