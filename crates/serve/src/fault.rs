//! Deterministic fault injection for the serving pool.
//!
//! Mirrors the training runtime's `FaultPlan` (see `platter-yolo`'s
//! `runtime` module): faults are keyed to the global *batch sequence
//! number* the pool assigns as workers pick up work, not to wall-clock
//! time, so a seeded plan reproduces the exact same trip/recover trace on
//! every run. Each fault fires exactly once.

use std::collections::BTreeMap;
use std::time::Duration;

/// A failure injected into the execution of one batch.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeFault {
    /// Panic inside the worker's forward pass (tests `catch_unwind`
    /// containment and the engine-rebuild path).
    WorkerPanic,
    /// Stall the executor for `delay` before the forward pass (tests
    /// deadline-aware dropping: requests whose deadline passes during the
    /// stall are answered with `DeadlineExceeded`, not served stale).
    SlowExec {
        /// How long the executor appears to hang.
        delay: Duration,
    },
    /// Overwrite the compiled head outputs with NaNs (tests the output
    /// guard and the breaker's eager fallback).
    CorruptOutput,
}

/// A schedule of injected faults keyed by batch sequence number.
#[derive(Clone, Debug, Default)]
pub struct ServeFaultPlan {
    faults: BTreeMap<u64, Vec<ServeFault>>,
}

impl ServeFaultPlan {
    /// An empty plan (no faults fire).
    pub fn new() -> ServeFaultPlan {
        ServeFaultPlan::default()
    }

    /// Schedule `fault` to fire when batch `batch` executes.
    pub fn at(mut self, batch: u64, fault: ServeFault) -> ServeFaultPlan {
        self.faults.entry(batch).or_default().push(fault);
        self
    }

    /// Remove and return the faults scheduled for `batch` (each fires
    /// once).
    pub fn take(&mut self, batch: u64) -> Vec<ServeFault> {
        self.faults.remove(&batch).unwrap_or_default()
    }

    /// True when no faults remain.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_in_batch_order() {
        let mut plan = ServeFaultPlan::new()
            .at(2, ServeFault::WorkerPanic)
            .at(0, ServeFault::CorruptOutput)
            .at(0, ServeFault::SlowExec { delay: Duration::from_millis(5) });
        assert_eq!(
            plan.take(0),
            vec![
                ServeFault::CorruptOutput,
                ServeFault::SlowExec { delay: Duration::from_millis(5) }
            ]
        );
        assert!(plan.take(0).is_empty(), "batch-0 faults fire exactly once");
        assert!(plan.take(1).is_empty());
        assert_eq!(plan.take(2), vec![ServeFault::WorkerPanic]);
        assert!(plan.is_empty());
    }
}
