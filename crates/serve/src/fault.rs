//! Deterministic fault injection for the serving pool.
//!
//! Mirrors the training runtime's `FaultPlan` (see `platter-yolo`'s
//! `runtime` module): faults are keyed to deterministic sequence numbers,
//! not to wall-clock time, so a seeded plan reproduces the exact same
//! trip/recover trace on every run. Each fault fires exactly once.
//!
//! Two sequences exist side by side:
//!
//! * **batch faults** ([`ServeFaultPlan::at`]) are keyed to the global
//!   *batch sequence number* the pool assigns as workers pick up work, and
//!   are consumed inside the worker's execution attempt
//!   ([`ServeFault::WorkerPanic`], [`ServeFault::SlowExec`],
//!   [`ServeFault::CorruptOutput`]);
//! * **swap faults** ([`ServeFaultPlan::at_swap`]) are keyed to the model
//!   registry's *load/swap attempt number* and are consumed by
//!   `ModelRegistry::load_file` — they corrupt, stall, or de-calibrate a
//!   *candidate* model while it is still off the hot path
//!   ([`ServeFault::CorruptCandidate`], [`ServeFault::SlowLoad`],
//!   [`ServeFault::CandidateParityFail`]), proving a bad candidate is
//!   rejected on a typed counter while the incumbent keeps serving.

use std::collections::BTreeMap;
use std::time::Duration;

/// A failure injected into the execution of one batch, or into the load of
/// one candidate model.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeFault {
    /// Panic inside the worker's forward pass (tests `catch_unwind`
    /// containment and the engine-rebuild path).
    WorkerPanic,
    /// Stall the executor for `delay` before the forward pass (tests
    /// deadline-aware dropping: requests whose deadline passes during the
    /// stall are answered with `DeadlineExceeded`, not served stale).
    SlowExec {
        /// How long the executor appears to hang.
        delay: Duration,
    },
    /// Overwrite the compiled head outputs with NaNs (tests the output
    /// guard and the breaker's eager fallback).
    CorruptOutput,
    /// Flip one byte of the candidate's weight file contents after the
    /// read — the CRC check must reject it as `WeightError::Corrupt`
    /// before any tensor is built (swap-time; schedule with
    /// [`ServeFaultPlan::at_swap`]).
    CorruptCandidate,
    /// Stall the candidate load for `delay` — the load happens off the hot
    /// path, so the incumbent must keep answering at full rate throughout
    /// (swap-time).
    SlowLoad {
        /// How long the load appears to hang.
        delay: Duration,
    },
    /// Perturb one candidate parameter *after* the engine is compiled, so
    /// the eager reference and the compiled plan disagree and the parity
    /// smoke must reject the candidate (swap-time).
    CandidateParityFail,
}

/// A schedule of injected faults keyed by batch sequence number (worker
/// faults) and by swap attempt number (registry faults).
#[derive(Clone, Debug, Default)]
pub struct ServeFaultPlan {
    faults: BTreeMap<u64, Vec<ServeFault>>,
    swap_faults: BTreeMap<u64, Vec<ServeFault>>,
}

impl ServeFaultPlan {
    /// An empty plan (no faults fire).
    pub fn new() -> ServeFaultPlan {
        ServeFaultPlan::default()
    }

    /// Schedule `fault` to fire when batch `batch` executes.
    pub fn at(mut self, batch: u64, fault: ServeFault) -> ServeFaultPlan {
        self.faults.entry(batch).or_default().push(fault);
        self
    }

    /// Schedule `fault` to fire during the registry's `swap`-th load/swap
    /// attempt (0-based, counted across the registry's lifetime).
    pub fn at_swap(mut self, swap: u64, fault: ServeFault) -> ServeFaultPlan {
        self.swap_faults.entry(swap).or_default().push(fault);
        self
    }

    /// Remove and return the faults scheduled for `batch` (each fires
    /// once).
    pub fn take(&mut self, batch: u64) -> Vec<ServeFault> {
        self.faults.remove(&batch).unwrap_or_default()
    }

    /// Remove and return the faults scheduled for swap attempt `swap`
    /// (each fires once).
    pub fn take_swap(&mut self, swap: u64) -> Vec<ServeFault> {
        self.swap_faults.remove(&swap).unwrap_or_default()
    }

    /// True when no faults remain in either sequence.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.swap_faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_in_batch_order() {
        let mut plan = ServeFaultPlan::new()
            .at(2, ServeFault::WorkerPanic)
            .at(0, ServeFault::CorruptOutput)
            .at(0, ServeFault::SlowExec { delay: Duration::from_millis(5) });
        assert_eq!(
            plan.take(0),
            vec![
                ServeFault::CorruptOutput,
                ServeFault::SlowExec { delay: Duration::from_millis(5) }
            ]
        );
        assert!(plan.take(0).is_empty(), "batch-0 faults fire exactly once");
        assert!(plan.take(1).is_empty());
        assert_eq!(plan.take(2), vec![ServeFault::WorkerPanic]);
        assert!(plan.is_empty());
    }

    #[test]
    fn swap_faults_are_a_separate_sequence() {
        let mut plan = ServeFaultPlan::new()
            .at(0, ServeFault::WorkerPanic)
            .at_swap(0, ServeFault::CorruptCandidate)
            .at_swap(1, ServeFault::CandidateParityFail);
        // Swap attempt 0 sees only the swap-keyed fault, not the batch one.
        assert_eq!(plan.take_swap(0), vec![ServeFault::CorruptCandidate]);
        assert!(plan.take_swap(0).is_empty(), "swap faults fire exactly once");
        assert_eq!(plan.take(0), vec![ServeFault::WorkerPanic]);
        assert!(!plan.is_empty(), "swap attempt 1 still pending");
        assert_eq!(plan.take_swap(1), vec![ServeFault::CandidateParityFail]);
        assert!(plan.is_empty());
    }
}
