//! Lock-free counters and fixed-bucket histograms behind a named registry.
//!
//! Handles ([`Counter`], [`Histogram`]) are registered once — registration
//! takes a short `RwLock` — and from then on every update is a relaxed
//! atomic RMW, so training steps, the serving hot loop, and worker threads
//! can all record into the same [`MetricsRegistry`] without contention.
//! [`MetricsRegistry::snapshot`] samples everything on demand into plain
//! data with derived stats (mean, estimated p50/p90/p99) and a JSON export.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::json;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A free-standing counter (not registry-owned).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Lock-free add of `v` into an `AtomicU64` holding `f64` bits.
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Lock-free `min`/`max` fold of `v` into an `AtomicU64` holding `f64` bits.
fn atomic_f64_fold(cell: &AtomicU64, v: f64, keep_new: fn(f64, f64) -> bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    while keep_new(f64::from_bits(cur), v) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A histogram over fixed bucket upper bounds chosen at registration time,
/// plus an implicit overflow bucket. Records are relaxed atomics; quantiles
/// are estimated at snapshot time by linear interpolation within buckets
/// (exact min/max are tracked separately, so single-bucket distributions
/// still report sane p50/p99).
///
/// Non-finite samples cannot be binned or summed; they are counted in
/// `dropped` and otherwise ignored.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    dropped: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// Build a histogram over strictly increasing finite `bounds` (upper
    /// bounds; an overflow bucket is added automatically).
    ///
    /// Panics if `bounds` is empty, non-increasing, or non-finite.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing: {bounds:?}"
        );
        Histogram {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Record one sample. Non-finite samples only bump `dropped`.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
        atomic_f64_fold(&self.min_bits, v, |cur, new| new < cur);
        atomic_f64_fold(&self.max_bits, v, |cur, new| new > cur);
    }

    /// Total recorded (finite) samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sample the histogram into plain data. Concurrent recorders may land
    /// between field reads; the snapshot is a statistical sample, not a
    /// linearisable cut.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let (min, max) = if count == 0 { (0.0, 0.0) } else { (min, max) };
        let quantile = |q: f64| self.estimate_quantile(&counts, count, min, max, q);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            dropped: self.dropped.load(Ordering::Relaxed),
            sum,
            min,
            max,
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            buckets: self
                .bounds
                .iter()
                .copied()
                .chain(std::iter::once(f64::INFINITY))
                .zip(counts)
                .map(|(le, count)| BucketCount { le, count })
                .collect(),
        }
    }

    fn estimate_quantile(&self, counts: &[u64], total: u64, min: f64, max: f64, q: f64) -> f64 {
        if total == 0 {
            return 0.0;
        }
        // 0-based rank of the q-th order statistic.
        let rank = (q * (total as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if seen + c > rank {
                // Interpolate within the bucket; clamp edges to observed
                // min/max so sparse histograms don't report bound values
                // nothing ever hit.
                let lo = if i == 0 { min } else { self.bounds[i - 1].max(min) };
                let hi = if i < self.bounds.len() { self.bounds[i].min(max) } else { max };
                let frac = if c <= 1 { 0.5 } else { (rank - seen) as f64 / (c - 1) as f64 };
                return lo + (hi - lo).max(0.0) * frac;
            }
            seen += c;
        }
        max
    }
}

/// `count` exponentially spaced bucket bounds starting at `start`
/// (`start * factor^i`). The usual latency ladder:
/// `exp_bounds(0.25, 2.0, 12)` covers 0.25 ms … 512 ms.
pub fn exp_bounds(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count > 0, "bad exp_bounds({start}, {factor}, {count})");
    (0..count).map(|i| start * factor.powi(i as i32)).collect()
}

/// Sanitize a free-form label (a model name, a file stem) into one
/// dot-path-safe metric segment: `[A-Za-z0-9_-]` pass through, everything
/// else — including `.`, which would silently split the label into extra
/// path segments — becomes `_`. Empty input becomes `"_"` so the resulting
/// metric name never has a zero-width segment.
///
/// This is what lets per-model-version metrics like
/// `serve.model.{label}.batches` embed operator-supplied version names
/// without corrupting the metric namespace.
pub fn metric_label(raw: &str) -> String {
    if raw.is_empty() {
        return "_".to_string();
    }
    raw.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
        .collect()
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Arc<Counter>)>,
    histograms: Vec<(String, Arc<Histogram>)>,
}

/// Named metrics, registered once and sampled on demand.
///
/// `counter`/`histogram` are get-or-register: callers hold the returned
/// `Arc` and update it lock-free; the registry's own lock is touched only
/// at registration and snapshot time.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: RwLock<RegistryInner>,
}

/// Recover from a poisoned registry lock: metrics state is monotonic
/// counters, always safe to read after a panicking writer.
macro_rules! lock {
    ($guard:expr) => {
        $guard.unwrap_or_else(|poisoned| poisoned.into_inner())
    };
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or register the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = lock!(self.inner.read()).counters.iter().find(|(n, _)| n == name) {
            return c.1.clone();
        }
        let mut inner = lock!(self.inner.write());
        if let Some(c) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.1.clone();
        }
        let c = Arc::new(Counter::new());
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Get or register the histogram called `name` with the given bucket
    /// bounds. If `name` already exists the existing handle is returned and
    /// `bounds` is ignored — bucket layout is fixed at first registration.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(h) = lock!(self.inner.read()).histograms.iter().find(|(n, _)| n == name) {
            return h.1.clone();
        }
        let mut inner = lock!(self.inner.write());
        if let Some(h) = inner.histograms.iter().find(|(n, _)| n == name) {
            return h.1.clone();
        }
        let h = Arc::new(Histogram::new(bounds));
        inner.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Sample every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = lock!(self.inner.read());
        let mut counters: Vec<CounterSnapshot> = inner
            .counters
            .iter()
            .map(|(name, c)| CounterSnapshot { name: name.clone(), value: c.get() })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> =
            inner.histograms.iter().map(|(name, h)| h.snapshot(name)).collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { counters, histograms }
    }
}

/// A sampled counter.
#[derive(Clone, Debug)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at sample time.
    pub value: u64,
}

/// One histogram bucket: samples with `value <= le` (cumulative-exclusive of
/// earlier buckets). The overflow bucket has `le == f64::INFINITY`.
#[derive(Clone, Copy, Debug)]
pub struct BucketCount {
    /// Upper bound (inclusive) of the bucket.
    pub le: f64,
    /// Samples that landed in this bucket.
    pub count: u64,
}

/// A sampled histogram with derived stats.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Finite samples recorded.
    pub count: u64,
    /// Non-finite samples rejected by [`Histogram::record`].
    pub dropped: u64,
    /// Sum of all finite samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// `sum / count` (0 when empty).
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Per-bucket counts in bound order, overflow last.
    pub buckets: Vec<BucketCount>,
}

/// Every registered metric at one sample point.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl HistogramSnapshot {
    fn push_json(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(out, "{{\"count\": {}, \"dropped\": {}, ", self.count, self.dropped);
        for (key, v) in [
            ("sum", self.sum),
            ("min", self.min),
            ("max", self.max),
            ("mean", self.mean),
            ("p50", self.p50),
            ("p90", self.p90),
            ("p99", self.p99),
        ] {
            let _ = write!(out, "\"{key}\": ");
            json::push_f64(out, v);
            out.push_str(", ");
        }
        out.push_str("\"buckets\": [");
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"le\": ");
            json::push_f64(out, b.le);
            let _ = write!(out, ", \"count\": {}}}", b.count);
        }
        out.push_str("]}");
    }
}

impl MetricsSnapshot {
    /// Value of the named counter, if it was registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The named histogram snapshot, if it was registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serialise as a JSON object:
    /// `{"counters": {name: value, ...}, "histograms": {name: {...}, ...}}`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::push_str(&mut out, &c.name);
            let _ = write!(out, ": {}", c.value);
        }
        out.push_str("}, \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::push_str(&mut out, &h.name);
            out.push_str(": ");
            h.push_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("events");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(reg.snapshot().counters[0].value, 40_000);
    }

    #[test]
    fn registry_dedups_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert!(Arc::ptr_eq(&a, &b));
        let h1 = reg.histogram("h", &[1.0, 2.0]);
        let h2 = reg.histogram("h", &[99.0]);
        assert!(Arc::ptr_eq(&h1, &h2));
    }

    #[test]
    fn histogram_quantiles_are_reasonable() {
        let h = Histogram::new(&exp_bounds(1.0, 2.0, 12));
        for v in 1..=1000 {
            h.record(v as f64);
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        // Bucketed estimates: generous tolerances, but must be ordered and
        // in the right region.
        assert!(s.p50 > 250.0 && s.p50 < 750.0, "p50 = {}", s.p50);
        assert!(s.p99 > 900.0 && s.p99 <= 1000.0, "p99 = {}", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert_eq!(s.buckets.iter().map(|b| b.count).sum::<u64>(), 1000);
    }

    #[test]
    fn histogram_single_value_reports_exact_quantiles() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for _ in 0..5 {
            h.record(42.0);
        }
        let s = h.snapshot("t");
        // min == max == 42 clamps the interpolation edges.
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p99, 42.0);
    }

    #[test]
    fn histogram_drops_non_finite() {
        let h = Histogram::new(&[1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(0.5);
        let s = h.snapshot("t");
        assert_eq!(s.count, 1);
        assert_eq!(s.dropped, 2);
        assert!(s.sum.is_finite() && s.p99.is_finite());
    }

    #[test]
    fn metric_label_sanitizes_to_one_segment() {
        assert_eq!(metric_label("yolov4-v2"), "yolov4-v2");
        assert_eq!(metric_label("indianfood.v2"), "indianfood_v2", "dots would split the path");
        assert_eq!(metric_label("weights/run 3@prod"), "weights_run_3_prod");
        assert_eq!(metric_label(""), "_");
        // Idempotent: a sanitized label sanitizes to itself.
        let once = metric_label("a.b/c d");
        assert_eq!(metric_label(&once), once);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").add(3);
        reg.histogram("lat", &[0.5, 1.0]).record(0.7);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"a.b\": 3"));
        assert!(json.contains("\"lat\""));
        assert!(json.contains("\"le\": null")); // overflow bucket
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
