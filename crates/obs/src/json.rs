//! Minimal JSON emission helpers. This crate is dependency-free by design,
//! so snapshots serialise themselves with these two primitives instead of
//! pulling in serde.

use std::fmt::Write;

/// Append `s` as a quoted, escaped JSON string.
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` as a JSON number; non-finite values (which JSON cannot
/// represent) become `null`.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_control_chars() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\n\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\n\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut s = String::new();
            push_f64(&mut s, v);
            assert_eq!(s, "null");
        }
        let mut s = String::new();
        push_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
    }
}
