//! The per-op profiler sink: the planned executor's `run_profiled` calls
//! [`Profiler::record_op`] around every op it executes and
//! [`Profiler::record_run`] around the whole pass; [`ProfileReport`]
//! aggregates those into per-kind and per-step tables with a renderable
//! top-K view and a JSON export for `results/PROFILE_*.json`.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::json;

/// Receives one event per executed plan op. Implementations must be cheap —
/// they run inside the inference loop.
pub trait Profiler {
    /// One op finished: plan step index, structural kind label (e.g.
    /// `conv2d[Mish]`), wall time in nanoseconds, and bytes touched
    /// (inputs + outputs + parameters).
    fn record_op(&mut self, step: usize, kind: &str, nanos: u64, bytes: u64);

    /// One full pass over the plan finished (`nanos` is the wall time of the
    /// whole execute call, op loop plus output copies).
    fn record_run(&mut self, nanos: u64);
}

/// Accumulated cost of one op kind or plan step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStat {
    /// Times the op executed.
    pub calls: u64,
    /// Total wall nanoseconds.
    pub nanos: u64,
    /// Total bytes touched (inputs + outputs + parameters, per call).
    pub bytes: u64,
}

impl OpStat {
    fn absorb(&mut self, nanos: u64, bytes: u64) {
        self.calls += 1;
        self.nanos += nanos;
        self.bytes += bytes;
    }
}

/// One plan step's accumulated cost plus its kind label.
#[derive(Clone, Debug, Default)]
pub struct StepStat {
    /// Structural kind of the op at this step.
    pub kind: String,
    /// Accumulated cost across runs.
    pub stat: OpStat,
}

/// The standard [`Profiler`]: aggregates events per op kind and per plan
/// step across any number of runs.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    kinds: BTreeMap<String, OpStat>,
    steps: Vec<StepStat>,
    total_nanos: u64,
    runs: u64,
}

impl Profiler for ProfileReport {
    fn record_op(&mut self, step: usize, kind: &str, nanos: u64, bytes: u64) {
        if step >= self.steps.len() {
            self.steps.resize_with(step + 1, StepStat::default);
        }
        let s = &mut self.steps[step];
        if s.kind.is_empty() {
            s.kind = kind.to_string();
        }
        s.stat.absorb(nanos, bytes);
        self.kinds.entry(kind.to_string()).or_default().absorb(nanos, bytes);
    }

    fn record_run(&mut self, nanos: u64) {
        self.total_nanos += nanos;
        self.runs += 1;
    }
}

impl ProfileReport {
    /// An empty report.
    pub fn new() -> ProfileReport {
        ProfileReport::default()
    }

    /// Full passes recorded via [`Profiler::record_run`].
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total wall nanoseconds across recorded runs.
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos
    }

    /// Sum of per-op nanoseconds (always ≤ total: the difference is loop
    /// and output-copy overhead the per-op timers don't see).
    pub fn op_nanos(&self) -> u64 {
        self.steps.iter().map(|s| s.stat.nanos).sum()
    }

    /// Fraction of total wall time attributed to individual ops — the
    /// "timings sum to within tolerance of the measured total" check.
    pub fn op_time_share(&self) -> f64 {
        if self.total_nanos == 0 {
            return 0.0;
        }
        self.op_nanos() as f64 / self.total_nanos as f64
    }

    /// Per-step stats in plan order.
    pub fn steps(&self) -> &[StepStat] {
        &self.steps
    }

    /// The `k` most expensive op kinds, by total time, with their share of
    /// total wall time.
    pub fn top_k(&self, k: usize) -> Vec<(String, OpStat, f64)> {
        let mut kinds: Vec<(String, OpStat)> =
            self.kinds.iter().map(|(name, stat)| (name.clone(), *stat)).collect();
        // BTreeMap iteration gives a deterministic name order for ties.
        kinds.sort_by_key(|k| std::cmp::Reverse(k.1.nanos));
        kinds
            .into_iter()
            .take(k)
            .map(|(name, stat)| {
                let share =
                    if self.total_nanos == 0 { 0.0 } else { stat.nanos as f64 / self.total_nanos as f64 };
                (name, stat, share)
            })
            .collect()
    }

    /// Render the top-K table as aligned text, e.g.:
    ///
    /// ```text
    /// kind                        calls     ms/run   share      MB/run
    /// conv2d[Mish]                  570      35.21   87.3%       42.11
    /// maxpool5s1                     90       1.02    2.5%        8.40
    /// ```
    pub fn render_table(&self, k: usize) -> String {
        let runs = self.runs.max(1);
        let mut out = String::new();
        let _ = writeln!(out, "{:<28}{:>7}{:>11}{:>8}{:>12}", "kind", "calls", "ms/run", "share", "MB/run");
        for (name, stat, share) in self.top_k(k) {
            let _ = writeln!(
                out,
                "{:<28}{:>7}{:>11.2}{:>7.1}%{:>12.2}",
                name,
                stat.calls,
                stat.nanos as f64 / 1e6 / runs as f64,
                share * 100.0,
                stat.bytes as f64 / (1024.0 * 1024.0) / runs as f64,
            );
        }
        let _ = writeln!(
            out,
            "{:<28}{:>7}{:>11.2}{:>7.1}%",
            "total (wall)",
            self.runs,
            self.total_nanos as f64 / 1e6 / runs as f64,
            100.0
        );
        out
    }

    /// Serialise the whole report as a JSON object:
    ///
    /// ```json
    /// {"runs": N, "total_ms": t, "op_time_ms": o, "op_time_share": s,
    ///  "kinds": [{"kind": k, "calls": c, "ms": m, "share": f, "mb": b}, ...],
    ///  "steps": [{"step": i, "kind": k, "calls": c, "ms": m, "mb": b}, ...]}
    /// ```
    ///
    /// `kinds` is sorted by time descending; `ms`/`mb` are totals across all
    /// runs (divide by `runs` for per-pass numbers).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"runs\": {}, \"total_ms\": {:.6}, \"op_time_ms\": {:.6}, \"op_time_share\": {:.6}, \"kinds\": [",
            self.runs,
            self.total_nanos as f64 / 1e6,
            self.op_nanos() as f64 / 1e6,
            self.op_time_share()
        );
        for (i, (name, stat, share)) in self.top_k(usize::MAX).into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"kind\": ");
            json::push_str(&mut out, &name);
            let _ = write!(
                out,
                ", \"calls\": {}, \"ms\": {:.6}, \"share\": {:.6}, \"mb\": {:.6}}}",
                stat.calls,
                stat.nanos as f64 / 1e6,
                share,
                stat.bytes as f64 / (1024.0 * 1024.0)
            );
        }
        out.push_str("], \"steps\": [");
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"step\": {i}, \"kind\": ");
            json::push_str(&mut out, &s.kind);
            let _ = write!(
                out,
                ", \"calls\": {}, \"ms\": {:.6}, \"mb\": {:.6}}}",
                s.stat.calls,
                s.stat.nanos as f64 / 1e6,
                s.stat.bytes as f64 / (1024.0 * 1024.0)
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ProfileReport {
        let mut r = ProfileReport::new();
        for _ in 0..2 {
            r.record_op(0, "input", 100, 64);
            r.record_op(1, "conv2d[Mish]", 10_000, 4096);
            r.record_op(2, "conv2d[Mish]", 30_000, 8192);
            r.record_op(3, "maxpool5s1", 2_000, 1024);
            r.record_run(43_000);
        }
        r
    }

    #[test]
    fn aggregates_per_kind_and_per_step() {
        let r = sample_report();
        assert_eq!(r.runs(), 2);
        assert_eq!(r.steps().len(), 4);
        assert_eq!(r.steps()[2].stat.calls, 2);
        assert_eq!(r.steps()[2].stat.nanos, 60_000);
        let top = r.top_k(2);
        assert_eq!(top[0].0, "conv2d[Mish]");
        assert_eq!(top[0].1.calls, 4);
        assert_eq!(top[0].1.nanos, 80_000);
        assert_eq!(top[1].0, "maxpool5s1");
    }

    #[test]
    fn op_time_share_is_op_sum_over_total() {
        let r = sample_report();
        assert_eq!(r.op_nanos(), 84_200);
        assert_eq!(r.total_nanos(), 86_000);
        assert!((r.op_time_share() - 84_200.0 / 86_000.0).abs() < 1e-12);
    }

    #[test]
    fn table_and_json_render() {
        let r = sample_report();
        let table = r.render_table(3);
        assert!(table.contains("conv2d[Mish]"));
        assert!(table.contains("total (wall)"));
        let json = r.to_json();
        assert!(json.contains("\"op_time_share\""));
        assert!(json.contains("\"kind\": \"conv2d[Mish]\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_report_is_safe() {
        let r = ProfileReport::new();
        assert_eq!(r.op_time_share(), 0.0);
        assert!(r.top_k(5).is_empty());
        r.to_json();
        r.render_table(5);
    }
}
