//! `platter-obs` — the workspace's observability layer.
//!
//! Two pieces, both dependency-free and safe to thread through hot paths:
//!
//! - [`MetricsRegistry`]: a registry of named [`Counter`]s and fixed-bucket
//!   [`Histogram`]s. Handles are `Arc`s registered once and updated with
//!   relaxed atomics — no locks on the record path — then sampled on demand
//!   into a [`MetricsSnapshot`] (plain data + JSON export).
//! - [`Profiler`]: the sink trait the planned executor's `run_profiled`
//!   reports per-op timings to, with [`ProfileReport`] as the standard
//!   aggregating implementation (per-kind and per-step tables, JSON export
//!   for `results/PROFILE_*.json`).
//!
//! Overhead budget: when profiling is *not* requested the executor runs the
//! exact same op sequence with no timer reads — the instrumentation is a
//! dead `Option` check per op. Metrics counters/histograms cost one or two
//! relaxed atomic RMWs per event, cheap enough to leave permanently on.

pub mod metrics;
pub mod profile;

mod json;

pub use metrics::{
    exp_bounds, metric_label, BucketCount, Counter, CounterSnapshot, Histogram,
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use profile::{OpStat, ProfileReport, Profiler, StepStat};
