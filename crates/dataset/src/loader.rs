//! Batched data loading with optional augmentation, mosaic, shuffling and a
//! prefetch thread (the role darknet's data-loading threads play).

use platter_imaging::augment::{augment, mosaic, AugmentConfig};
use platter_imaging::synth::LabeledBox;
use platter_imaging::Image;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::annotation::Annotation;
use crate::generator::SyntheticDataset;

/// Loader configuration.
#[derive(Clone, Debug)]
pub struct LoaderConfig {
    /// Images per batch.
    pub batch_size: usize,
    /// Network input edge; images are resized (square→square) to this.
    pub input_size: usize,
    /// Photometric/geometric augmentation; `None` for validation.
    pub augment: Option<AugmentConfig>,
    /// Probability of replacing a sample with a 4-image mosaic.
    pub mosaic_prob: f64,
    /// Shuffle order each epoch.
    pub shuffle: bool,
    /// Loader RNG seed.
    pub seed: u64,
}

impl LoaderConfig {
    /// Training defaults: full augmentation + 50% mosaic.
    pub fn train(batch_size: usize, input_size: usize, seed: u64) -> LoaderConfig {
        LoaderConfig {
            batch_size,
            input_size,
            augment: Some(AugmentConfig::default()),
            mosaic_prob: 0.5,
            shuffle: true,
            seed,
        }
    }

    /// Validation defaults: no augmentation, stable order.
    pub fn val(batch_size: usize, input_size: usize) -> LoaderConfig {
        LoaderConfig { batch_size, input_size, augment: None, mosaic_prob: 0.0, shuffle: false, seed: 0 }
    }
}

/// A rendered batch: planar CHW floats plus per-image annotations.
#[derive(Clone, Debug)]
pub struct ImageBatch {
    /// `[n, 3, s, s]` image data, CHW per image, values in `[0, 1]`.
    pub data: Vec<f32>,
    /// Batch shape `[n, 3, s, s]`.
    pub shape: [usize; 4],
    /// Ground truth per image.
    pub annotations: Vec<Vec<Annotation>>,
}

/// Snapshot of a [`BatchLoader`]'s position in its sample stream.
///
/// Captures everything that makes the stream deterministic: the completed
/// epoch count, the in-epoch cursor, the current (shuffled) index order and
/// the RNG state driving shuffles and augmentations. A loader restored from
/// a state emits exactly the batches the original loader would have emitted
/// next — the property crash-safe training resume depends on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoaderState {
    /// Completed epochs.
    pub epoch: usize,
    /// Position within the current epoch's index order.
    pub cursor: usize,
    /// The current (post-shuffle) sample order.
    pub indices: Vec<usize>,
    /// The loader RNG's internal state.
    pub rng_state: [u64; 4],
}

/// Epoch iterator over a dataset subset.
pub struct BatchLoader<'a> {
    dataset: &'a SyntheticDataset,
    indices: Vec<usize>,
    cfg: LoaderConfig,
    rng: StdRng,
    cursor: usize,
    epoch: usize,
}

impl<'a> BatchLoader<'a> {
    /// Create a loader over `indices` of `dataset`.
    pub fn new(dataset: &'a SyntheticDataset, indices: &[usize], cfg: LoaderConfig) -> BatchLoader<'a> {
        assert!(cfg.batch_size > 0, "batch size must be positive");
        if let Some(aug) = &cfg.augment {
            if let Err(e) = aug.validate() {
                panic!("loader: invalid AugmentConfig: {e}");
            }
        }
        let mut loader = BatchLoader {
            dataset,
            indices: indices.to_vec(),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            cursor: 0,
            epoch: 0,
        };
        loader.reshuffle();
        loader
    }

    fn reshuffle(&mut self) {
        if self.cfg.shuffle {
            for i in (1..self.indices.len()).rev() {
                let j = self.rng.random_range(0..=i);
                self.indices.swap(i, j);
            }
        }
    }

    /// Number of batches per epoch (final partial batch included).
    pub fn batches_per_epoch(&self) -> usize {
        self.indices.len().div_ceil(self.cfg.batch_size)
    }

    /// Completed epochs.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Snapshot the loader's stream position for checkpointing.
    pub fn state(&self) -> LoaderState {
        LoaderState {
            epoch: self.epoch,
            cursor: self.cursor,
            indices: self.indices.clone(),
            rng_state: self.rng.state(),
        }
    }

    /// Restore a position captured by [`BatchLoader::state`].
    ///
    /// The state must come from a loader over the same dataset subset
    /// (same index multiset); otherwise the restore is rejected and the
    /// loader is left unchanged.
    pub fn restore(&mut self, state: &LoaderState) -> Result<(), String> {
        let mut ours = self.indices.clone();
        let mut theirs = state.indices.clone();
        ours.sort_unstable();
        theirs.sort_unstable();
        if ours != theirs {
            return Err(format!(
                "loader state covers a different subset: {} indices vs {}",
                state.indices.len(),
                self.indices.len()
            ));
        }
        if state.cursor > state.indices.len() {
            return Err(format!(
                "loader state cursor {} out of range for {} indices",
                state.cursor,
                state.indices.len()
            ));
        }
        self.epoch = state.epoch;
        self.cursor = state.cursor;
        self.indices = state.indices.clone();
        self.rng = StdRng::from_state(state.rng_state);
        Ok(())
    }

    fn to_labeled(&self, anns: &[Annotation]) -> Vec<LabeledBox> {
        anns.iter()
            .map(|a| LabeledBox { kind: self.dataset.spec.classes.kind(a.class), bbox: a.bbox })
            .collect()
    }

    fn to_annotations(&self, boxes: &[LabeledBox]) -> Vec<Annotation> {
        boxes
            .iter()
            .filter_map(|b| {
                self.dataset
                    .spec
                    .classes
                    .class_of(b.kind)
                    .map(|class| Annotation { class, bbox: b.bbox })
            })
            .collect()
    }

    /// Render one training sample (with augmentation/mosaic as configured).
    fn render_sample(&mut self, index: usize) -> (Image, Vec<Annotation>) {
        let use_mosaic = self.cfg.mosaic_prob > 0.0 && self.rng.random_bool(self.cfg.mosaic_prob);
        if use_mosaic && self.indices.len() >= 4 {
            let mut tiles = Vec::with_capacity(4);
            let (img0, anns0) = self.dataset.render(index);
            tiles.push((img0, self.to_labeled(&anns0)));
            for _ in 0..3 {
                let pick = self.indices[self.rng.random_range(0..self.indices.len())];
                let (img, anns) = self.dataset.render(pick);
                tiles.push((img, self.to_labeled(&anns)));
            }
            let tiles: [(Image, Vec<LabeledBox>); 4] = tiles.try_into().expect("4 tiles");
            let (img, boxes) = mosaic(&tiles, self.cfg.input_size, &mut self.rng);
            return (img, self.to_annotations(&boxes));
        }
        let (img, anns) = self.dataset.render(index);
        if let Some(cfg) = &self.cfg.augment {
            let labeled = self.to_labeled(&anns);
            let (img, boxes) = augment(&img, &labeled, cfg, &mut self.rng);
            (img, self.to_annotations(&boxes))
        } else {
            (img, anns)
        }
    }

    /// Next batch; rolls into the next epoch automatically.
    pub fn next_batch(&mut self) -> ImageBatch {
        let s = self.cfg.input_size;
        let n = self.cfg.batch_size.min(self.indices.len() - self.cursor).max(1);
        let mut data = Vec::with_capacity(n * 3 * s * s);
        let mut annotations = Vec::with_capacity(n);
        for k in 0..n {
            let idx = self.indices[self.cursor + k];
            let (img, anns) = self.render_sample(idx);
            let img = if img.width() == s && img.height() == s { img } else { img.resize(s, s) };
            data.extend_from_slice(&img.to_chw());
            annotations.push(anns);
        }
        self.cursor += n;
        if self.cursor >= self.indices.len() {
            self.cursor = 0;
            self.epoch += 1;
            self.reshuffle();
        }
        ImageBatch { data, shape: [n, 3, s, s], annotations }
    }
}

/// Drive `consume` over `n_batches` batches while a background thread renders
/// ahead through a bounded crossbeam channel — the prefetch pattern darknet
/// uses to hide data-loading latency.
pub fn run_prefetched(
    dataset: &SyntheticDataset,
    indices: &[usize],
    cfg: LoaderConfig,
    n_batches: usize,
    capacity: usize,
    mut consume: impl FnMut(usize, ImageBatch),
) {
    crossbeam::scope(|scope| {
        let (tx, rx) = crossbeam::channel::bounded::<ImageBatch>(capacity.max(1));
        scope.spawn(move |_| {
            let mut loader = BatchLoader::new(dataset, indices, cfg);
            for _ in 0..n_batches {
                if tx.send(loader.next_batch()).is_err() {
                    break;
                }
            }
        });
        for i in 0..n_batches {
            match rx.recv() {
                Ok(batch) => consume(i, batch),
                Err(_) => break,
            }
        }
    })
    .expect("prefetch worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassSet;
    use crate::generator::DatasetSpec;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 24, 48, 9))
    }

    #[test]
    fn batch_shapes_and_values() {
        let ds = dataset();
        let indices: Vec<usize> = (0..ds.len()).collect();
        let mut loader = BatchLoader::new(&ds, &indices, LoaderConfig::val(4, 32));
        let b = loader.next_batch();
        assert_eq!(b.shape, [4, 3, 32, 32]);
        assert_eq!(b.data.len(), 4 * 3 * 32 * 32);
        assert_eq!(b.annotations.len(), 4);
        assert!(b.data.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn epoch_advances_and_covers_all_items() {
        let ds = dataset();
        let indices: Vec<usize> = (0..ds.len()).collect();
        let mut loader = BatchLoader::new(&ds, &indices, LoaderConfig::val(5, 32));
        assert_eq!(loader.batches_per_epoch(), 5);
        let mut seen = 0;
        for _ in 0..5 {
            seen += loader.next_batch().annotations.len();
        }
        assert_eq!(seen, 24);
        assert_eq!(loader.epoch(), 1);
    }

    #[test]
    fn validation_loader_is_reproducible() {
        let ds = dataset();
        let indices: Vec<usize> = (0..8).collect();
        let mut a = BatchLoader::new(&ds, &indices, LoaderConfig::val(4, 32));
        let mut b = BatchLoader::new(&ds, &indices, LoaderConfig::val(4, 32));
        let ba = a.next_batch();
        let bb = b.next_batch();
        assert_eq!(ba.data, bb.data);
        assert_eq!(ba.annotations.len(), bb.annotations.len());
    }

    #[test]
    fn train_loader_augments_but_keeps_annotations_valid() {
        let ds = dataset();
        let indices: Vec<usize> = (0..ds.len()).collect();
        let mut loader = BatchLoader::new(&ds, &indices, LoaderConfig::train(4, 32, 11));
        for _ in 0..4 {
            let b = loader.next_batch();
            for anns in &b.annotations {
                for a in anns {
                    assert!(a.class < 10);
                    assert!(a.bbox.is_valid(), "{a:?}");
                    let (x0, y0, x1, y1) = a.bbox.xyxy();
                    assert!(x0 >= -1e-3 && y0 >= -1e-3 && x1 <= 1.0 + 1e-3 && y1 <= 1.0 + 1e-3);
                }
            }
        }
    }

    #[test]
    fn state_round_trip_replays_identical_stream() {
        let ds = dataset();
        let indices: Vec<usize> = (0..ds.len()).collect();
        let cfg = LoaderConfig::train(4, 32, 7);
        let mut original = BatchLoader::new(&ds, &indices, cfg.clone());
        // Advance partway into the second epoch so epoch/cursor/shuffle state
        // are all non-trivial.
        for _ in 0..8 {
            original.next_batch();
        }
        let state = original.state();
        let expected: Vec<ImageBatch> = (0..6).map(|_| original.next_batch()).collect();

        let mut resumed = BatchLoader::new(&ds, &indices, cfg);
        resumed.restore(&state).unwrap();
        for want in &expected {
            let got = resumed.next_batch();
            assert_eq!(got.shape, want.shape);
            assert_eq!(got.data, want.data, "resumed loader must replay identical pixels");
            assert_eq!(got.annotations.len(), want.annotations.len());
        }
    }

    #[test]
    fn restore_rejects_foreign_state() {
        let ds = dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let half: Vec<usize> = (0..ds.len() / 2).collect();
        let donor = BatchLoader::new(&ds, &half, LoaderConfig::val(4, 32));
        let mut loader = BatchLoader::new(&ds, &all, LoaderConfig::val(4, 32));
        assert!(loader.restore(&donor.state()).is_err());
        // A corrupted cursor is rejected too.
        let mut bad = loader.state();
        bad.cursor = bad.indices.len() + 1;
        assert!(loader.restore(&bad).is_err());
    }

    #[test]
    fn prefetched_delivers_all_batches_in_order() {
        let ds = dataset();
        let indices: Vec<usize> = (0..ds.len()).collect();
        let mut got = Vec::new();
        run_prefetched(&ds, &indices, LoaderConfig::val(6, 32), 4, 2, |i, b| {
            got.push((i, b.annotations.len()));
        });
        assert_eq!(got, vec![(0, 6), (1, 6), (2, 6), (3, 6)]);
    }
}
