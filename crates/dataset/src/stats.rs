//! Dataset composition statistics (the §IV-B numbers and Table IV).

use crate::generator::SyntheticDataset;

/// Composition statistics of a dataset plan.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanStats {
    /// Total images.
    pub images: usize,
    /// Images with exactly one dish.
    pub single_dish: usize,
    /// Images with more than one unique class.
    pub multi_dish: usize,
    /// `multi_dish / images`.
    pub multi_fraction: f64,
    /// Mean dishes per multi-dish image (the paper reports 2.33).
    pub dishes_per_platter: f64,
    /// Annotated instances per class id.
    pub per_class_instances: Vec<usize>,
}

impl PlanStats {
    /// Compute stats from a plan (no rendering required).
    pub fn of(dataset: &SyntheticDataset) -> PlanStats {
        let mut single = 0usize;
        let mut multi = 0usize;
        let mut dish_total = 0usize;
        let mut per_class = vec![0usize; dataset.spec.classes.len()];
        for item in &dataset.items {
            if item.is_platter() {
                multi += 1;
                dish_total += item.scene.dishes.len();
            } else {
                single += 1;
            }
            for &kind in &item.scene.dishes {
                if let Some(c) = dataset.spec.classes.class_of(kind) {
                    per_class[c] += 1;
                }
            }
        }
        PlanStats {
            images: dataset.len(),
            single_dish: single,
            multi_dish: multi,
            multi_fraction: multi as f64 / dataset.len().max(1) as f64,
            dishes_per_platter: if multi == 0 { 0.0 } else { dish_total as f64 / multi as f64 },
            per_class_instances: per_class,
        }
    }
}

/// The paper's reported composition of IndianFood10 (§IV-B), for
/// paper-vs-measured reporting in the experiment binaries.
pub struct PaperComposition {
    pub images: usize,
    pub multi_dish: usize,
    pub dishes_per_platter: f64,
}

/// §IV-B reference numbers.
pub const INDIANFOOD10_PAPER: PaperComposition =
    PaperComposition { images: 11_547, multi_dish: 842, dishes_per_platter: 2.33 };

/// Future-work section reference for IndianFood20.
pub const INDIANFOOD20_PAPER: PaperComposition =
    PaperComposition { images: 17_817, multi_dish: 0, dishes_per_platter: 0.0 };

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassSet;
    use crate::generator::DatasetSpec;

    #[test]
    fn stats_sum_correctly() {
        let ds = SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 300, 64, 5));
        let s = PlanStats::of(&ds);
        assert_eq!(s.images, 300);
        assert_eq!(s.single_dish + s.multi_dish, 300);
        let total_instances: usize = s.per_class_instances.iter().sum();
        assert!(total_instances >= 300, "platters add instances");
    }

    #[test]
    fn full_plan_reproduces_paper_composition() {
        let ds = SyntheticDataset::generate(DatasetSpec::indianfood10_paper());
        let s = PlanStats::of(&ds);
        assert_eq!(s.images, INDIANFOOD10_PAPER.images);
        assert_eq!(s.multi_dish, INDIANFOOD10_PAPER.multi_dish);
        // Mean dishes/platter within sampling noise of 2.33.
        assert!(
            (s.dishes_per_platter - INDIANFOOD10_PAPER.dishes_per_platter).abs() < 0.08,
            "dishes/platter {}",
            s.dishes_per_platter
        );
    }

    #[test]
    fn every_class_appears() {
        let ds = SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood20(), 400, 64, 8));
        let s = PlanStats::of(&ds);
        for (c, &n) in s.per_class_instances.iter().enumerate() {
            assert!(n > 0, "class {c} absent");
        }
    }
}
