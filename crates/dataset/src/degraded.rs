//! Degraded dataset views: a [`SyntheticDataset`] seen through an
//! adverse-conditions pipeline.
//!
//! A [`DegradedDataset`] is a *view*, not a copy — it renders the clean plan
//! on demand and pushes each image through a fixed sequence of
//! [`Degradation`] ops with a per-image RNG derived from one master seed.
//! The same `(base plan, ops, seed)` triple therefore always produces the
//! same degraded split, which is what lets the robustness benchmark promise
//! a bit-identical `TABLE_robustness.json` across runs. Boxes come back as
//! exact ground truth for the degraded image: photometric ops leave them
//! untouched, geometric ops remap them through the same transform the
//! pixels took.

use platter_imaging::degrade::{apply_all, Degradation};
use platter_imaging::synth::LabeledBox;
use platter_imaging::Image;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::annotation::Annotation;
use crate::generator::SyntheticDataset;

/// SplitMix64-style spread so consecutive image indices land far apart in
/// seed space (matches the texture hash's multiplier).
const SEED_SPREAD: u64 = 0x9E37_79B9_7F4A_7C15;

/// A deterministic degraded view over a clean synthetic dataset.
#[derive(Clone, Debug)]
pub struct DegradedDataset<'a> {
    base: &'a SyntheticDataset,
    ops: Vec<Degradation>,
    seed: u64,
}

impl<'a> DegradedDataset<'a> {
    /// Wrap `base` with a degradation stack and a master seed. Ops are
    /// already severity-validated by [`Degradation::new`].
    pub fn new(base: &'a SyntheticDataset, ops: Vec<Degradation>, seed: u64) -> DegradedDataset<'a> {
        DegradedDataset { base, ops, seed }
    }

    /// The wrapped clean dataset.
    pub fn base(&self) -> &SyntheticDataset {
        self.base
    }

    /// The degradation stack applied to every image.
    pub fn ops(&self) -> &[Degradation] {
        &self.ops
    }

    /// The master seed the per-image streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of images (same as the base plan).
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True when the base plan is empty.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// The RNG driving image `index`'s degradations — exposed so callers
    /// that degrade pre-rendered images (e.g. the benchmark's cached val
    /// set) stay on the exact stream `render` uses.
    pub fn rng_for(&self, index: usize) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (index as u64 + 1).wrapping_mul(SEED_SPREAD))
    }

    /// Render the degraded image and its exact ground truth.
    pub fn render(&self, index: usize) -> (Image, Vec<Annotation>) {
        let (clean, annotations) = self.base.render(index);
        let classes = &self.base.spec.classes;
        let boxes: Vec<LabeledBox> = annotations
            .iter()
            .map(|a| LabeledBox { kind: classes.kind(a.class), bbox: a.bbox })
            .collect();
        let mut rng = self.rng_for(index);
        let (image, out_boxes) = apply_all(&self.ops, &clean, &boxes, &mut rng);
        let out = out_boxes
            .iter()
            .filter_map(|b| classes.class_of(b.kind).map(|class| Annotation { class, bbox: b.bbox }))
            .collect();
        (image, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassSet;
    use crate::generator::DatasetSpec;
    use platter_imaging::degrade::DegradationKind;

    fn base() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 12, 64, 42))
    }

    fn ops(kind: DegradationKind, sev: u8) -> Vec<Degradation> {
        vec![Degradation::new(kind, sev).unwrap()]
    }

    #[test]
    fn degraded_view_is_deterministic() {
        let ds = base();
        let view = DegradedDataset::new(&ds, ops(DegradationKind::SensorNoise, 3), 77);
        let (a, aa) = view.render(5);
        let (b, bb) = view.render(5);
        assert_eq!(a, b);
        assert_eq!(aa, bb);
    }

    #[test]
    fn photometric_degradations_keep_clean_ground_truth() {
        let ds = base();
        let view = DegradedDataset::new(&ds, ops(DegradationKind::LowLight, 4), 77);
        for i in 0..ds.len() {
            let (_, clean_anns) = ds.render(i);
            let (img, anns) = view.render(i);
            assert_eq!(anns, clean_anns, "image {i}");
            assert_eq!(img.width(), 64);
        }
    }

    #[test]
    fn different_images_draw_different_streams() {
        let ds = base();
        let view = DegradedDataset::new(&ds, ops(DegradationKind::SensorNoise, 5), 9);
        // Two distinct single-dish images must not share noise: seed spread
        // keeps per-image streams independent.
        let (a, _) = view.render(0);
        let (b, _) = view.render(1);
        assert_ne!(a, b);
    }

    #[test]
    fn extreme_scale_view_shrinks_annotations() {
        let ds = base();
        let view = DegradedDataset::new(&ds, ops(DegradationKind::ExtremeScale, 4), 13);
        let (_, clean) = ds.render(0);
        let (_, degraded) = view.render(0);
        assert!(!degraded.is_empty());
        assert!(degraded[0].bbox.w < clean[0].bbox.w * 0.5);
        assert_eq!(degraded[0].class, clean[0].class);
    }
}
