//! YOLO-format annotations.
//!
//! The paper annotates every image with a text file of
//! `class cx cy w h` lines (normalised coordinates) produced by
//! makesense.ai; this module reads and writes exactly that format.

use std::fmt::Write as _;

use platter_imaging::NormBox;
use serde::{Deserialize, Serialize};

/// One ground-truth object: class id + normalised box.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    /// Class id in the dataset's [`crate::ClassSet`].
    pub class: usize,
    /// Normalised centre/size box.
    pub bbox: NormBox,
}

/// Errors when parsing a YOLO annotation file.
#[derive(Debug, PartialEq)]
pub enum AnnotationError {
    /// A line did not have exactly 5 whitespace-separated fields.
    FieldCount { line: usize, got: usize },
    /// A field failed to parse as a number.
    BadNumber { line: usize, field: &'static str },
    /// A coordinate parsed as NaN or ±infinity.
    NonFinite { line: usize, field: &'static str },
    /// A coordinate fell outside `[0, 1]` (plus small tolerance).
    OutOfRange { line: usize, field: &'static str, value: f32 },
}

impl std::fmt::Display for AnnotationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnotationError::FieldCount { line, got } => {
                write!(f, "line {line}: expected 5 fields, got {got}")
            }
            AnnotationError::BadNumber { line, field } => write!(f, "line {line}: bad {field}"),
            AnnotationError::NonFinite { line, field } => {
                write!(f, "line {line}: {field} is not finite")
            }
            AnnotationError::OutOfRange { line, field, value } => {
                write!(f, "line {line}: {field} = {value} out of [0,1]")
            }
        }
    }
}

impl std::error::Error for AnnotationError {}

/// Serialise annotations to YOLO txt (one `class cx cy w h` line each).
pub fn to_yolo_txt(annotations: &[Annotation]) -> String {
    let mut out = String::new();
    for a in annotations {
        let _ = writeln!(out, "{} {:.6} {:.6} {:.6} {:.6}", a.class, a.bbox.cx, a.bbox.cy, a.bbox.w, a.bbox.h);
    }
    out
}

/// Parse a YOLO txt annotation file. Blank lines are ignored.
pub fn from_yolo_txt(text: &str) -> Result<Vec<Annotation>, AnnotationError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(AnnotationError::FieldCount { line, got: fields.len() });
        }
        let class: usize = fields[0].parse().map_err(|_| AnnotationError::BadNumber { line, field: "class" })?;
        let mut nums = [0.0f32; 4];
        for (slot, (raw, name)) in nums
            .iter_mut()
            .zip(fields[1..].iter().zip(["cx", "cy", "w", "h"]))
        {
            let v: f32 = raw.parse().map_err(|_| AnnotationError::BadNumber { line, field: name })?;
            if !v.is_finite() {
                return Err(AnnotationError::NonFinite { line, field: name });
            }
            *slot = v;
        }
        let [cx, cy, w, h] = nums;
        const TOL: f32 = 1e-3;
        for (value, (lo, field)) in nums.into_iter().zip([(-TOL, "cx"), (-TOL, "cy"), (0.0, "w"), (0.0, "h")]) {
            if !(lo..=1.0 + TOL).contains(&value) {
                return Err(AnnotationError::OutOfRange { line, field, value });
            }
        }
        out.push(Annotation { class, bbox: NormBox::new(cx, cy, w, h) });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let anns = vec![
            Annotation { class: 2, bbox: NormBox::new(0.5, 0.5, 0.25, 0.3) },
            Annotation { class: 9, bbox: NormBox::new(0.125, 0.875, 0.1, 0.05) },
        ];
        let txt = to_yolo_txt(&anns);
        let back = from_yolo_txt(&txt).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in anns.iter().zip(&back) {
            assert_eq!(a.class, b.class);
            assert!((a.bbox.cx - b.bbox.cx).abs() < 1e-5);
            assert!((a.bbox.h - b.bbox.h).abs() < 1e-5);
        }
    }

    #[test]
    fn format_matches_yolo_convention() {
        let txt = to_yolo_txt(&[Annotation { class: 3, bbox: NormBox::new(0.5, 0.25, 0.1, 0.2) }]);
        assert_eq!(txt.trim(), "3 0.500000 0.250000 0.100000 0.200000");
    }

    #[test]
    fn blank_lines_ignored() {
        let anns = from_yolo_txt("\n0 0.5 0.5 0.2 0.2\n\n  \n1 0.3 0.3 0.1 0.1\n").unwrap();
        assert_eq!(anns.len(), 2);
    }

    #[test]
    fn rejects_wrong_field_count() {
        assert_eq!(
            from_yolo_txt("0 0.5 0.5 0.2"),
            Err(AnnotationError::FieldCount { line: 1, got: 4 })
        );
    }

    #[test]
    fn rejects_non_numeric() {
        assert!(matches!(
            from_yolo_txt("0 x 0.5 0.2 0.2"),
            Err(AnnotationError::BadNumber { line: 1, field: "cx" })
        ));
        assert!(matches!(
            from_yolo_txt("nope 0.5 0.5 0.2 0.2"),
            Err(AnnotationError::BadNumber { line: 1, field: "class" })
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            from_yolo_txt("0 1.5 0.5 0.2 0.2"),
            Err(AnnotationError::OutOfRange { line: 1, field: "cx", value: 1.5 })
        );
        // Widths may not be negative even within the centre tolerance.
        assert!(matches!(
            from_yolo_txt("0 0.5 0.5 -0.0005 0.2"),
            Err(AnnotationError::OutOfRange { line: 1, field: "w", .. })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        assert_eq!(
            from_yolo_txt("0 NaN 0.5 0.2 0.2"),
            Err(AnnotationError::NonFinite { line: 1, field: "cx" })
        );
        assert_eq!(
            from_yolo_txt("0 0.5 0.5 inf 0.2"),
            Err(AnnotationError::NonFinite { line: 1, field: "w" })
        );
        assert_eq!(
            from_yolo_txt("0 0.5 -inf 0.2 0.2"),
            Err(AnnotationError::NonFinite { line: 1, field: "cy" })
        );
    }

    #[test]
    fn errors_name_the_offending_line() {
        let err = from_yolo_txt("0 0.5 0.5 0.2 0.2\n\n1 2.0 0.5 0.2 0.2").unwrap_err();
        assert_eq!(err, AnnotationError::OutOfRange { line: 3, field: "cx", value: 2.0 });
        assert_eq!(err.to_string(), "line 3: cx = 2 out of [0,1]");
    }
}
