//! # platter-dataset
//!
//! Synthetic *IndianFood10* / *IndianFood20* datasets: the paper's class
//! vocabularies (Tables I and IV), YOLO txt annotations, a deterministic
//! dataset planner reproducing the paper's composition (11,547 images, ~7%
//! multi-dish platters averaging 2.33 dishes), 80/20 splits, and a batching
//! loader with mosaic/HSV/affine augmentation and crossbeam prefetch.
//!
//! ## Example: plan a micro dataset and pull one batch
//!
//! ```
//! use platter_dataset::{BatchLoader, ClassSet, DatasetSpec, LoaderConfig, Split, SyntheticDataset};
//!
//! let spec = DatasetSpec::micro(ClassSet::indianfood10(), 40, 64, 7);
//! let dataset = SyntheticDataset::generate(spec);
//! let split = Split::eighty_twenty(dataset.len(), 7);
//! let mut loader = BatchLoader::new(&dataset, &split.train, LoaderConfig::val(4, 64));
//! let batch = loader.next_batch();
//! assert_eq!(batch.shape, [4, 3, 64, 64]);
//! ```

pub mod annotation;
pub mod classes;
pub mod degraded;
pub mod export;
pub mod generator;
pub mod loader;
pub mod split;
pub mod stats;

pub use annotation::{from_yolo_txt, to_yolo_txt, Annotation, AnnotationError};
pub use classes::ClassSet;
pub use degraded::DegradedDataset;
pub use export::{export_to_dir, ExportSummary};
pub use generator::{DatasetItem, DatasetSpec, SyntheticDataset};
pub use loader::{run_prefetched, BatchLoader, ImageBatch, LoaderConfig, LoaderState};
pub use split::Split;
pub use stats::{PlanStats, INDIANFOOD10_PAPER, INDIANFOOD20_PAPER};
