//! Materialise a synthetic dataset to disk in the layout the paper
//! published on IEEE DataPort: one image file plus one YOLO txt per item,
//! and a `classes.txt` naming file (the makesense.ai / darknet convention).

use std::io;
use std::path::{Path, PathBuf};

use platter_imaging::io::write_ppm;

use crate::annotation::to_yolo_txt;
use crate::generator::SyntheticDataset;

/// Outcome of an export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExportSummary {
    /// Images written.
    pub images: usize,
    /// Annotation files written.
    pub annotations: usize,
    /// Output directory.
    pub dir: PathBuf,
}

/// Write `indices` of `dataset` into `dir` as `NNNNNN.ppm` + `NNNNNN.txt`
/// pairs plus `classes.txt`. Existing files are overwritten. Rendering is
/// deterministic, so re-exporting reproduces identical bytes.
pub fn export_to_dir(dataset: &SyntheticDataset, indices: &[usize], dir: impl AsRef<Path>) -> io::Result<ExportSummary> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;

    let names: Vec<String> = (0..dataset.spec.classes.len())
        .map(|i| dataset.spec.classes.name_of(i).to_string())
        .collect();
    std::fs::write(dir.join("classes.txt"), names.join("\n") + "\n")?;

    let mut images = 0usize;
    let mut annotations = 0usize;
    for &idx in indices {
        let (img, anns) = dataset.render(idx);
        let stem = format!("{:06}", dataset.items[idx].id);
        write_ppm(&img, dir.join(format!("{stem}.ppm")))?;
        images += 1;
        std::fs::write(dir.join(format!("{stem}.txt")), to_yolo_txt(&anns))?;
        annotations += 1;
    }
    Ok(ExportSummary { images, annotations, dir: dir.to_path_buf() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::from_yolo_txt;
    use crate::classes::ClassSet;
    use crate::generator::DatasetSpec;
    use platter_imaging::io::read_ppm;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("platter_export_test").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn export_writes_matched_pairs_and_classes() {
        let ds = SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 6, 48, 3));
        let dir = tmp("pairs");
        let summary = export_to_dir(&ds, &[0, 2, 4], &dir).unwrap();
        assert_eq!(summary.images, 3);
        assert_eq!(summary.annotations, 3);
        let classes = std::fs::read_to_string(dir.join("classes.txt")).unwrap();
        assert_eq!(classes.lines().count(), 10);
        assert!(classes.starts_with("Aloo Paratha"));
        // The txt parses back and matches the live render.
        let txt = std::fs::read_to_string(dir.join("000002.txt")).unwrap();
        let parsed = from_yolo_txt(&txt).unwrap();
        let (_, live) = ds.render(2);
        assert_eq!(parsed.len(), live.len());
        // And the image round-trips through PPM at the planned size.
        let img = read_ppm(dir.join("000002.ppm")).unwrap();
        assert_eq!(img.width(), 48);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn export_is_deterministic() {
        let ds = SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 4, 32, 9));
        let (d1, d2) = (tmp("det1"), tmp("det2"));
        export_to_dir(&ds, &[1], &d1).unwrap();
        export_to_dir(&ds, &[1], &d2).unwrap();
        let a = std::fs::read(d1.join("000001.ppm")).unwrap();
        let b = std::fs::read(d2.join("000001.ppm")).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(d1).ok();
        std::fs::remove_dir_all(d2).ok();
    }
}
