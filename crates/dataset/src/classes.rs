//! Class vocabularies: *IndianFood10* (Table I) and *IndianFood20*
//! (Table IV), exactly as the paper lists them.

use platter_imaging::DishKind;

/// An ordered class vocabulary; the position of a dish is its YOLO class id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassSet {
    /// Dataset name (e.g. `IndianFood10`).
    pub name: &'static str,
    classes: Vec<DishKind>,
}

impl ClassSet {
    /// The 10-class vocabulary of Table I, in the paper's order.
    pub fn indianfood10() -> ClassSet {
        ClassSet {
            name: "IndianFood10",
            classes: vec![
                DishKind::AlooParatha,
                DishKind::Biryani,
                DishKind::Chapati,
                DishKind::ChickenTikka,
                DishKind::Khichdi,
                DishKind::Omelette,
                DishKind::PalakPaneer,
                DishKind::PlainRice,
                DishKind::Poha,
                DishKind::Rasgulla,
            ],
        }
    }

    /// The 20-class vocabulary of Table IV (column-major reading order of
    /// the paper's two-column table).
    pub fn indianfood20() -> ClassSet {
        ClassSet {
            name: "IndianFood20",
            classes: vec![
                DishKind::IndianBread,
                DishKind::Rasgulla,
                DishKind::Biryani,
                DishKind::Uttapam,
                DishKind::Paneer,
                DishKind::Poha,
                DishKind::Khichdi,
                DishKind::Omelette,
                DishKind::PlainRice,
                DishKind::DalMakhni,
                DishKind::Dosa,
                DishKind::Rajma,
                DishKind::Poori,
                DishKind::Chole,
                DishKind::Dal,
                DishKind::Sambhar,
                DishKind::Papad,
                DishKind::GulabJamun,
                DishKind::Idli,
                DishKind::Vada,
            ],
        }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the vocabulary is empty (never, for the built-ins).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The dish for a class id.
    pub fn kind(&self, class: usize) -> DishKind {
        self.classes[class]
    }

    /// The class id for a dish, if present.
    pub fn class_of(&self, kind: DishKind) -> Option<usize> {
        self.classes.iter().position(|&k| k == kind)
    }

    /// Class display name.
    pub fn name_of(&self, class: usize) -> &'static str {
        self.classes[class].name()
    }

    /// Iterate `(class_id, kind)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, DishKind)> + '_ {
        self.classes.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indianfood10_matches_table1() {
        let cs = ClassSet::indianfood10();
        assert_eq!(cs.len(), 10);
        assert_eq!(cs.name_of(0), "Aloo Paratha");
        assert_eq!(cs.name_of(2), "Chapati");
        assert_eq!(cs.name_of(9), "Rasgulla");
    }

    #[test]
    fn indianfood20_matches_table4() {
        let cs = ClassSet::indianfood20();
        assert_eq!(cs.len(), 20);
        // Spot-check entries from Table IV.
        assert!(cs.class_of(DishKind::IndianBread).is_some());
        assert!(cs.class_of(DishKind::GulabJamun).is_some());
        assert!(cs.class_of(DishKind::Vada).is_some());
        // Chicken Tikka is *not* in IndianFood20 (merged out in the paper).
        assert!(cs.class_of(DishKind::ChickenTikka).is_none());
    }

    #[test]
    fn ids_round_trip() {
        let cs = ClassSet::indianfood10();
        for (id, kind) in cs.iter() {
            assert_eq!(cs.class_of(kind), Some(id));
            assert_eq!(cs.kind(id), kind);
        }
    }

    #[test]
    fn vocabularies_have_no_duplicates() {
        for cs in [ClassSet::indianfood10(), ClassSet::indianfood20()] {
            let mut kinds = cs.classes.clone();
            kinds.sort();
            kinds.dedup();
            assert_eq!(kinds.len(), cs.len(), "{}", cs.name);
        }
    }
}
