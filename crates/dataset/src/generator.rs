//! Deterministic synthetic-dataset generation.
//!
//! A dataset is a *plan*: one [`SceneSpec`] per image, derived from a single
//! seed. Images and their annotations are rendered on demand, so the
//! full-size IndianFood10 plan (11,547 images) is cheap to hold while the
//! micro experiments render only what they train on. The composition knobs
//! default to the paper's §IV-B numbers: ~7% multi-dish images averaging
//! 2.33 dishes per platter.

use platter_imaging::synth::{render_scene, PlatterStyle, SceneSpec};
use platter_imaging::Image;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::annotation::Annotation;
use crate::classes::ClassSet;

/// Recipe for a synthetic dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Class vocabulary.
    pub classes: ClassSet,
    /// Total number of images.
    pub n_images: usize,
    /// Fraction of multi-dish (platter) images; the paper has 842/11,547.
    pub multi_dish_fraction: f64,
    /// Rendered image edge (square) in pixels.
    pub image_size: usize,
    /// Master seed; everything else derives from it.
    pub seed: u64,
}

impl DatasetSpec {
    /// The full-size IndianFood10 plan as the paper describes it: 11,547
    /// images, 842 multi-dish (≈7.3%), rendered at 416 px.
    pub fn indianfood10_paper() -> DatasetSpec {
        DatasetSpec {
            classes: ClassSet::indianfood10(),
            n_images: 11_547,
            multi_dish_fraction: 842.0 / 11_547.0,
            image_size: 416,
            seed: 0x1001,
        }
    }

    /// The full-size IndianFood20 plan: 17,817 images.
    pub fn indianfood20_paper() -> DatasetSpec {
        DatasetSpec {
            classes: ClassSet::indianfood20(),
            n_images: 17_817,
            multi_dish_fraction: 842.0 / 11_547.0,
            image_size: 416,
            seed: 0x2002,
        }
    }

    /// A CPU-friendly plan with the same composition, for experiments.
    pub fn micro(classes: ClassSet, n_images: usize, image_size: usize, seed: u64) -> DatasetSpec {
        DatasetSpec { classes, n_images, multi_dish_fraction: 842.0 / 11_547.0, image_size, seed }
    }
}

/// One planned image.
#[derive(Clone, Debug)]
pub struct DatasetItem {
    /// Stable image id (also the annotation filename stem).
    pub id: usize,
    /// The scene to render.
    pub scene: SceneSpec,
}

impl DatasetItem {
    /// True if this is a multi-dish (platter) image.
    pub fn is_platter(&self) -> bool {
        self.scene.dishes.len() > 1
    }
}

/// A fully planned synthetic dataset.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// The recipe this plan was generated from.
    pub spec: DatasetSpec,
    /// One entry per image.
    pub items: Vec<DatasetItem>,
}

/// Dishes-per-platter distribution with mean 2.33 (matching §IV-B):
/// P(2)=0.70, P(3)=0.27, P(4)=0.03.
fn sample_platter_count(rng: &mut StdRng) -> usize {
    let u: f64 = rng.random_range(0.0..1.0);
    if u < 0.70 {
        2
    } else if u < 0.97 {
        3
    } else {
        4
    }
}

impl SyntheticDataset {
    /// Generate the plan for `spec`. Deterministic in `spec`.
    pub fn generate(spec: DatasetSpec) -> SyntheticDataset {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let n_multi = (spec.n_images as f64 * spec.multi_dish_fraction).round() as usize;
        let n_single = spec.n_images - n_multi;
        let k = spec.classes.len();
        let mut items = Vec::with_capacity(spec.n_images);

        // Single-dish images: round-robin over classes for balance, random
        // everything else.
        for i in 0..n_single {
            let kind = spec.classes.kind(i % k);
            items.push(DatasetItem {
                id: items.len(),
                scene: SceneSpec {
                    size: spec.image_size,
                    seed: rng.random_range(0..u64::MAX / 2),
                    dishes: vec![kind],
                    style: PlatterStyle::SingleDish,
                },
            });
        }

        // Platter images: 2–4 *distinct* classes per image (the paper counts
        // an image as multi-dish when it contains more than one unique
        // class), shared-plate or thali layout.
        for _ in 0..n_multi {
            let count = sample_platter_count(&mut rng).min(k);
            let mut picked: Vec<usize> = Vec::with_capacity(count);
            while picked.len() < count {
                let c = rng.random_range(0..k);
                if !picked.contains(&c) {
                    picked.push(c);
                }
            }
            let dishes = picked.iter().map(|&c| spec.classes.kind(c)).collect();
            let style = if rng.random_bool(0.4) { PlatterStyle::SharedPlate } else { PlatterStyle::Thali };
            items.push(DatasetItem {
                id: items.len(),
                scene: SceneSpec { size: spec.image_size, seed: rng.random_range(0..u64::MAX / 2), dishes, style },
            });
        }

        // Interleave platters through the dataset deterministically so splits
        // see both kinds (Fisher–Yates with the same master RNG).
        for i in (1..items.len()).rev() {
            let j = rng.random_range(0..=i);
            items.swap(i, j);
        }
        for (i, item) in items.iter_mut().enumerate() {
            item.id = i;
        }
        SyntheticDataset { spec, items }
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Render one item to an image plus YOLO annotations (classes mapped
    /// through this dataset's vocabulary).
    pub fn render(&self, index: usize) -> (Image, Vec<Annotation>) {
        let item = &self.items[index];
        let (image, boxes) = render_scene(&item.scene);
        let annotations = boxes
            .iter()
            .filter_map(|b| {
                self.spec
                    .classes
                    .class_of(b.kind)
                    .map(|class| Annotation { class, bbox: b.bbox })
            })
            .collect();
        (image, annotations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 200, 64, 42))
    }

    #[test]
    fn plan_counts_match_spec() {
        let ds = micro();
        assert_eq!(ds.len(), 200);
        let platters = ds.items.iter().filter(|i| i.is_platter()).count();
        let expect = (200.0f64 * 842.0 / 11_547.0).round() as usize;
        assert_eq!(platters, expect);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = micro();
        let b = micro();
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.scene.seed, y.scene.seed);
            assert_eq!(x.scene.dishes, y.scene.dishes);
        }
    }

    #[test]
    fn single_dish_images_are_class_balanced() {
        let ds = micro();
        let mut counts = vec![0usize; 10];
        for item in ds.items.iter().filter(|i| !i.is_platter()) {
            let c = ds.spec.classes.class_of(item.scene.dishes[0]).unwrap();
            counts[c] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "imbalanced: {counts:?}");
    }

    #[test]
    fn platters_have_distinct_classes() {
        let ds = micro();
        for item in ds.items.iter().filter(|i| i.is_platter()) {
            let mut dishes = item.scene.dishes.clone();
            dishes.sort();
            dishes.dedup();
            assert_eq!(dishes.len(), item.scene.dishes.len());
            assert!(item.scene.dishes.len() >= 2 && item.scene.dishes.len() <= 4);
        }
    }

    #[test]
    fn render_produces_annotations_for_every_dish() {
        let ds = micro();
        let platter_idx = ds.items.iter().position(|i| i.is_platter()).unwrap();
        let (img, anns) = ds.render(platter_idx);
        assert_eq!(img.width(), 64);
        assert_eq!(anns.len(), ds.items[platter_idx].scene.dishes.len());
        for a in &anns {
            assert!(a.class < 10);
            assert!(a.bbox.is_valid());
        }
    }

    #[test]
    fn paper_specs_have_paper_numbers() {
        let s10 = DatasetSpec::indianfood10_paper();
        assert_eq!(s10.n_images, 11_547);
        let s20 = DatasetSpec::indianfood20_paper();
        assert_eq!(s20.n_images, 17_817);
        assert_eq!(s20.classes.len(), 20);
    }

    #[test]
    fn full_size_plan_generates_quickly() {
        // Plans are cheap even at paper scale (no rendering).
        let ds = SyntheticDataset::generate(DatasetSpec::indianfood10_paper());
        assert_eq!(ds.len(), 11_547);
        let platters = ds.items.iter().filter(|i| i.is_platter()).count();
        assert_eq!(platters, 842);
    }
}
