//! Train/validation splitting (the paper trains on 80% and validates on the
//! remaining 20%).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Index sets for a train/val split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Split {
    /// Training image indices.
    pub train: Vec<usize>,
    /// Validation image indices.
    pub val: Vec<usize>,
}

impl Split {
    /// Shuffled split with `train_fraction` of `n` items in train.
    pub fn random(n: usize, train_fraction: f64, seed: u64) -> Split {
        assert!((0.0..=1.0).contains(&train_fraction), "fraction out of range");
        let mut indices: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            indices.swap(i, j);
        }
        let cut = (n as f64 * train_fraction).round() as usize;
        let val = indices.split_off(cut);
        Split { train: indices, val }
    }

    /// The paper's 80/20 split.
    pub fn eighty_twenty(n: usize, seed: u64) -> Split {
        Split::random(n, 0.8, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_exact_and_disjoint() {
        let s = Split::eighty_twenty(100, 7);
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.val.len(), 20);
        let mut all: Vec<usize> = s.train.iter().chain(&s.val).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(Split::eighty_twenty(50, 3), Split::eighty_twenty(50, 3));
        assert_ne!(Split::eighty_twenty(50, 3), Split::eighty_twenty(50, 4));
    }

    #[test]
    fn split_is_shuffled() {
        let s = Split::eighty_twenty(1000, 1);
        // The train set should not simply be 0..800.
        let sorted: Vec<usize> = (0..800).collect();
        let mut train = s.train.clone();
        train.sort_unstable();
        assert_ne!(s.train, sorted, "train order must be shuffled");
        assert_ne!(train, sorted, "membership must be shuffled too");
    }

    #[test]
    fn odd_sizes_round() {
        let s = Split::random(5, 0.8, 0);
        assert_eq!(s.train.len(), 4);
        assert_eq!(s.val.len(), 1);
        let s = Split::random(0, 0.8, 0);
        assert!(s.train.is_empty() && s.val.is_empty());
    }
}
