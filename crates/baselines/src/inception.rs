//! A compact Inception-style backbone (parallel 1×1 / 3×3 / double-3×3 /
//! pool-projection branches) standing in for the InceptionV2 feature
//! extractor of the paper's SSD baseline (Ramesh et al., Table III).

use platter_tensor::nn::{Activation, ConvBlock};
use platter_tensor::ops::Conv2dSpec;
use platter_tensor::{Mode, Param, Trace};
use rand::Rng;

/// One inception block: four parallel branches concatenated on channels.
pub struct InceptionBlock {
    b1: ConvBlock,
    b3_reduce: ConvBlock,
    b3: ConvBlock,
    b5_reduce: ConvBlock,
    b5a: ConvBlock,
    b5b: ConvBlock,
    pool_proj: ConvBlock,
}

impl InceptionBlock {
    /// `cout` must be divisible by 4 (each branch emits `cout/4`).
    pub fn new<R: Rng + ?Sized>(name: &str, cin: usize, cout: usize, rng: &mut R) -> InceptionBlock {
        assert_eq!(cout % 4, 0, "inception output channels must divide by 4");
        let q = cout / 4;
        let relu = Activation::Relu;
        InceptionBlock {
            b1: ConvBlock::new(&format!("{name}.b1"), cin, q, 1, Conv2dSpec::same(1), relu, rng),
            b3_reduce: ConvBlock::new(&format!("{name}.b3r"), cin, q, 1, Conv2dSpec::same(1), relu, rng),
            b3: ConvBlock::new(&format!("{name}.b3"), q, q, 3, Conv2dSpec::same(3), relu, rng),
            b5_reduce: ConvBlock::new(&format!("{name}.b5r"), cin, q, 1, Conv2dSpec::same(1), relu, rng),
            b5a: ConvBlock::new(&format!("{name}.b5a"), q, q, 3, Conv2dSpec::same(3), relu, rng),
            b5b: ConvBlock::new(&format!("{name}.b5b"), q, q, 3, Conv2dSpec::same(3), relu, rng),
            pool_proj: ConvBlock::new(&format!("{name}.pp"), cin, q, 1, Conv2dSpec::same(1), relu, rng),
        }
    }

    /// Trace the block onto a backend (eager tape or inference planner).
    pub fn trace<B: Trace>(&self, b: &mut B, x: B::Value, mode: Mode) -> B::Value {
        let y1 = self.b1.trace(b, x, mode);
        let y3 = self.b3_reduce.trace(b, x, mode);
        let y3 = self.b3.trace(b, y3, mode);
        let y5 = self.b5_reduce.trace(b, x, mode);
        let y5 = self.b5a.trace(b, y5, mode);
        let y5 = self.b5b.trace(b, y5, mode);
        let yp = b.maxpool2d(x, 3, 1, 1);
        let yp = self.pool_proj.trace(b, yp, mode);
        b.concat_channels(&[y1, y3, y5, yp])
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> Vec<Param> {
        [&self.b1, &self.b3_reduce, &self.b3, &self.b5_reduce, &self.b5a, &self.b5b, &self.pool_proj]
            .iter()
            .flat_map(|c| c.parameters())
            .collect()
    }
}

/// Inception-mini backbone producing strides 8/16/32 features.
pub struct InceptionBackbone {
    stem1: ConvBlock,
    stem2: ConvBlock,
    down1: ConvBlock,
    inc1: InceptionBlock,
    down2: ConvBlock,
    inc2: InceptionBlock,
    down3: ConvBlock,
    inc3: InceptionBlock,
    /// Channels of the three outputs.
    pub out_channels: [usize; 3],
}

impl InceptionBackbone {
    /// Build with base width `w` (stride-8 features get `2w`, deeper ones
    /// `4w` and `8w`; `w` must be divisible by 2).
    pub fn new<R: Rng + ?Sized>(name: &str, w: usize, rng: &mut R) -> InceptionBackbone {
        let relu = Activation::Relu;
        let (c8, c16, c32) = (w * 2, w * 4, w * 8);
        InceptionBackbone {
            stem1: ConvBlock::new(&format!("{name}.stem1"), 3, w, 3, Conv2dSpec::down(3), relu, rng),
            stem2: ConvBlock::new(&format!("{name}.stem2"), w, w, 3, Conv2dSpec::down(3), relu, rng),
            down1: ConvBlock::new(&format!("{name}.down1"), w, c8, 3, Conv2dSpec::down(3), relu, rng),
            inc1: InceptionBlock::new(&format!("{name}.inc1"), c8, c8, rng),
            down2: ConvBlock::new(&format!("{name}.down2"), c8, c16, 3, Conv2dSpec::down(3), relu, rng),
            inc2: InceptionBlock::new(&format!("{name}.inc2"), c16, c16, rng),
            down3: ConvBlock::new(&format!("{name}.down3"), c16, c32, 3, Conv2dSpec::down(3), relu, rng),
            inc3: InceptionBlock::new(&format!("{name}.inc3"), c32, c32, rng),
            out_channels: [c8, c16, c32],
        }
    }

    /// Trace to `[stride8, stride16, stride32]` features on either backend.
    pub fn trace<B: Trace>(&self, b: &mut B, x: B::Value, mode: Mode) -> [B::Value; 3] {
        let h = self.stem1.trace(b, x, mode);
        let h = self.stem2.trace(b, h, mode);
        let h = self.down1.trace(b, h, mode);
        let f8 = self.inc1.trace(b, h, mode);
        let h = self.down2.trace(b, f8, mode);
        let f16 = self.inc2.trace(b, h, mode);
        let h = self.down3.trace(b, f16, mode);
        let f32_ = self.inc3.trace(b, h, mode);
        [f8, f16, f32_]
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> Vec<Param> {
        let mut p = self.stem1.parameters();
        p.extend(self.stem2.parameters());
        p.extend(self.down1.parameters());
        p.extend(self.inc1.parameters());
        p.extend(self.down2.parameters());
        p.extend(self.inc2.parameters());
        p.extend(self.down3.parameters());
        p.extend(self.inc3.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platter_tensor::{Graph, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn block_concatenates_four_branches() {
        let mut rng = StdRng::seed_from_u64(1);
        let block = InceptionBlock::new("i", 8, 16, &mut rng);
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::zeros(&[1, 8, 6, 6]));
        let y = block.trace(&mut g, x, Mode::Infer);
        assert_eq!(g.shape(y), &[1, 16, 6, 6]);
    }

    #[test]
    fn backbone_strides() {
        let mut rng = StdRng::seed_from_u64(2);
        let bb = InceptionBackbone::new("ssd.bb", 8, &mut rng);
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::zeros(&[1, 3, 64, 64]));
        let [f8, f16, f32_] = bb.trace(&mut g, x, Mode::Infer);
        assert_eq!(g.shape(f8), &[1, 16, 8, 8]);
        assert_eq!(g.shape(f16), &[1, 32, 4, 4]);
        assert_eq!(g.shape(f32_), &[1, 64, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "divide by 4")]
    fn block_rejects_odd_widths() {
        let mut rng = StdRng::seed_from_u64(3);
        InceptionBlock::new("i", 8, 10, &mut rng);
    }
}
