//! A deliberately dated single-scale grid detector — the stand-in for the
//! oldest row of Table III (BTBU-Food-60, 67.7% mAP). YOLOv1-style: one
//! box per cell, direct coordinate regression with MSE, softmax class per
//! cell, single stride-16 feature map, plain ReLU CNN. Its weaknesses
//! (single scale, one box per cell, no anchors) are the point.

use platter_dataset::{Annotation, BatchLoader, LoaderConfig, SyntheticDataset};
use platter_tensor::nn::{Activation, ConvBlock};
use platter_tensor::ops::Conv2dSpec;
use platter_tensor::{clip_global_norm, Graph, Mode, Param, Sgd, Tensor, Var};
use platter_yolo::{nms, Detection, NmsKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Legacy detector config.
#[derive(Clone, Debug)]
pub struct LegacyConfig {
    pub num_classes: usize,
    pub input_size: usize,
    /// Grid edge (single scale).
    pub grid: usize,
    /// Base channel width.
    pub width: usize,
}

impl LegacyConfig {
    /// Micro profile: 64-px input, 4×4 grid.
    pub fn micro(num_classes: usize) -> LegacyConfig {
        LegacyConfig { num_classes, input_size: 64, grid: 4, width: 8 }
    }

    fn head_channels(&self) -> usize {
        5 + self.num_classes
    }
}

/// The legacy grid detector.
pub struct LegacyDetector {
    pub config: LegacyConfig,
    convs: Vec<ConvBlock>,
    head: ConvBlock,
}

impl LegacyDetector {
    /// Build with plain conv downsampling to the grid resolution.
    pub fn new(config: LegacyConfig, seed: u64) -> LegacyDetector {
        let mut rng = StdRng::seed_from_u64(seed);
        let relu = Activation::Relu;
        let w = config.width;
        let downs = (config.input_size / config.grid).ilog2() as usize;
        let mut convs = Vec::new();
        let mut cin = 3;
        for i in 0..downs {
            let cout = (w << i).min(w * 8);
            convs.push(ConvBlock::new(&format!("legacy.c{i}"), cin, cout, 3, Conv2dSpec::down(3), relu, &mut rng));
            cin = cout;
        }
        convs.push(ConvBlock::new("legacy.mix", cin, cin, 3, Conv2dSpec::same(3), relu, &mut rng));
        let head = ConvBlock::without_bn("legacy.head", cin, config.head_channels(), 1, Conv2dSpec::same(1), Activation::Linear, &mut rng);
        LegacyDetector { config, convs, head }
    }

    /// Forward to `[n, 5+c, grid, grid]` raw outputs.
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool) -> Var {
        let mode = Mode::from_training(training);
        let mut h = x;
        for c in &self.convs {
            h = c.trace(g, h, mode);
        }
        self.head.trace(g, h, mode)
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> Vec<Param> {
        let mut p: Vec<Param> = self.convs.iter().flat_map(|c| c.parameters()).collect();
        p.extend(self.head.parameters());
        p
    }

    /// Detect over a CHW batch.
    pub fn detect_batch(&self, x: &Tensor, conf_thresh: f32, nms_iou: f32) -> Vec<Vec<Detection>> {
        let mut g = Graph::inference();
        let xv = g.leaf(x.clone());
        let out = self.forward(&mut g, xv, false);
        let t = g.value(out);
        let n = t.shape()[0];
        let gsz = self.config.grid;
        let c = self.config.num_classes;
        let plane = gsz * gsz;
        let data = t.as_slice();
        let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
        let mut result = vec![Vec::new(); n];
        for b in 0..n {
            for row in 0..gsz {
                for col in 0..gsz {
                    let at = |k: usize| data[(b * (5 + c) + k) * plane + row * gsz + col];
                    let obj = sigmoid(at(4));
                    if obj < conf_thresh {
                        continue;
                    }
                    // Softmax class.
                    let mut m = f32::NEG_INFINITY;
                    for k in 0..c {
                        m = m.max(at(5 + k));
                    }
                    let mut z = 0.0;
                    let mut best = (0usize, 0.0f32);
                    for k in 0..c {
                        let e = (at(5 + k) - m).exp();
                        z += e;
                        if e > best.1 {
                            best = (k, e);
                        }
                    }
                    let score = obj * best.1 / z;
                    if score < conf_thresh {
                        continue;
                    }
                    let cx = (sigmoid(at(0)) + col as f32) / gsz as f32;
                    let cy = (sigmoid(at(1)) + row as f32) / gsz as f32;
                    let w = sigmoid(at(2));
                    let h = sigmoid(at(3));
                    if let Some(bbox) = platter_imaging::NormBox::new(cx, cy, w, h).clipped() {
                        result[b].push(Detection { class: best.0, score, bbox });
                    }
                }
            }
        }
        result.into_iter().map(|d| nms(d, nms_iou, NmsKind::Greedy)).collect()
    }
}

/// YOLOv1-style MSE + CE loss on the single grid.
fn legacy_loss(g: &mut Graph, out: Var, batch: &[Vec<Annotation>], cfg: &LegacyConfig) -> Var {
    let n = batch.len();
    let gsz = cfg.grid;
    let c = cfg.num_classes;
    let plane = gsz * gsz;
    // Dense targets.
    let mut obj = vec![0.0f32; n * plane];
    let mut txy = vec![0.0f32; n * 2 * plane];
    let mut twh = vec![0.0f32; n * 2 * plane];
    let mut tcls = vec![0.0f32; n * c * plane];
    for (b, anns) in batch.iter().enumerate() {
        for ann in anns {
            let col = ((ann.bbox.cx * gsz as f32) as usize).min(gsz - 1);
            let row = ((ann.bbox.cy * gsz as f32) as usize).min(gsz - 1);
            let cell = row * gsz + col;
            if obj[b * plane + cell] == 1.0 {
                continue; // one box per cell: later dishes in the same cell are dropped
            }
            obj[b * plane + cell] = 1.0;
            txy[(b * 2) * plane + cell] = ann.bbox.cx * gsz as f32 - col as f32;
            txy[(b * 2 + 1) * plane + cell] = ann.bbox.cy * gsz as f32 - row as f32;
            twh[(b * 2) * plane + cell] = ann.bbox.w;
            twh[(b * 2 + 1) * plane + cell] = ann.bbox.h;
            tcls[(b * c + ann.class) * plane + cell] = 1.0;
        }
    }
    let obj_t = Tensor::from_vec(obj, &[n, 1, gsz, gsz]);
    let txy_t = Tensor::from_vec(txy, &[n, 2, gsz, gsz]);
    let twh_t = Tensor::from_vec(twh, &[n, 2, gsz, gsz]);
    let tcls_t = Tensor::from_vec(tcls, &[n, c, gsz, gsz]);
    let num_pos = obj_t.sum().max(1.0);

    let xy_logits = g.narrow(out, 1, 0, 2);
    let wh_logits = g.narrow(out, 1, 2, 2);
    let obj_logits = g.narrow(out, 1, 4, 1);
    let cls_logits = g.narrow(out, 1, 5, c);

    let mask = g.constant(obj_t.clone());
    // MSE on sigmoid-decoded xy and wh.
    let pxy = g.sigmoid(xy_logits);
    let txy_c = g.constant(txy_t);
    let dxy = g.sub(pxy, txy_c);
    let dxy2 = g.square(dxy);
    let dxy2m = g.mul(dxy2, mask);
    let loss_xy = g.sum_all(dxy2m);

    let pwh = g.sigmoid(wh_logits);
    let twh_c = g.constant(twh_t);
    let dwh = g.sub(pwh, twh_c);
    let dwh2 = g.square(dwh);
    let dwh2m = g.mul(dwh2, mask);
    let loss_wh = g.sum_all(dwh2m);

    let obj_bce = g.bce_with_logits(obj_logits, &obj_t);
    let loss_obj = g.sum_all(obj_bce);

    let cls_bce = g.bce_with_logits(cls_logits, &tcls_t);
    let cls_m = g.mul(cls_bce, mask);
    let loss_cls = g.sum_all(cls_m);

    let box_part0 = g.add(loss_xy, loss_wh);
    let box_part = g.mul_scalar(box_part0, 5.0 / num_pos);
    let obj_part = g.mul_scalar(loss_obj, 1.0 / (n * plane) as f32);
    let cls_part = g.mul_scalar(loss_cls, 1.0 / num_pos);
    let ab = g.add(box_part, obj_part);
    g.add(ab, cls_part)
}

/// Train the legacy detector.
pub fn train_legacy(
    model: &LegacyDetector,
    dataset: &SyntheticDataset,
    indices: &[usize],
    iterations: usize,
    batch_size: usize,
    lr: f32,
    seed: u64,
) -> Vec<f32> {
    let mut loader_cfg = LoaderConfig::train(batch_size, model.config.input_size, seed);
    loader_cfg.mosaic_prob = 0.0;
    loader_cfg.augment = None; // the era's pipelines barely augmented
    let mut loader = BatchLoader::new(dataset, indices, loader_cfg);
    let mut opt = Sgd::new(model.parameters(), 0.9, 5e-4);
    let mut history = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let batch = loader.next_batch();
        let x = Tensor::from_vec(batch.data, &batch.shape);
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let out = model.forward(&mut g, xv, true);
        let loss = legacy_loss(&mut g, out, &batch.annotations, &model.config);
        g.backward(loss);
        clip_global_norm(&model.parameters(), 10.0);
        opt.step(lr);
        opt.zero_grad();
        history.push(g.value(loss).item());
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use platter_dataset::{ClassSet, DatasetSpec};
    use platter_imaging::NormBox;

    #[test]
    fn forward_shape() {
        let model = LegacyDetector::new(LegacyConfig::micro(10), 1);
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::zeros(&[2, 3, 64, 64]));
        let out = model.forward(&mut g, x, false);
        assert_eq!(g.shape(out), &[2, 15, 4, 4]);
    }

    #[test]
    fn loss_backprops() {
        let model = LegacyDetector::new(LegacyConfig::micro(5), 2);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[1, 3, 64, 64], &mut rng);
        let batch = vec![vec![Annotation { class: 2, bbox: NormBox::new(0.5, 0.5, 0.4, 0.4) }]];
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let out = model.forward(&mut g, xv, true);
        let loss = legacy_loss(&mut g, out, &batch, &model.config);
        assert!(g.value(loss).item().is_finite());
        g.backward(loss);
        assert!(model.parameters()[0].grad().as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn training_reduces_loss() {
        let ds = SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 8, 64, 9));
        let indices: Vec<usize> = (0..ds.len()).collect();
        let model = LegacyDetector::new(LegacyConfig::micro(10), 4);
        let history = train_legacy(&model, &ds, &indices, 12, 2, 5e-3, 5);
        assert!(history.last().unwrap() < history.first().unwrap());
    }

    #[test]
    fn one_box_per_cell_limit() {
        // Two dishes in the same cell: the legacy loss keeps only one — the
        // structural weakness that caps its platter performance.
        let model = LegacyDetector::new(LegacyConfig::micro(5), 6);
        let batch = vec![vec![
            Annotation { class: 0, bbox: NormBox::new(0.51, 0.51, 0.2, 0.2) },
            Annotation { class: 1, bbox: NormBox::new(0.55, 0.55, 0.2, 0.2) },
        ]];
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[1, 3, 64, 64]));
        let out = model.forward(&mut g, x, true);
        // Just verifies it builds and stays finite with the conflict.
        let loss = legacy_loss(&mut g, out, &batch, &model.config);
        assert!(g.value(loss).item().is_finite());
    }

    #[test]
    fn detect_batch_contract() {
        let model = LegacyDetector::new(LegacyConfig::micro(10), 7);
        let out = model.detect_batch(&Tensor::zeros(&[2, 3, 64, 64]), 0.3, 0.5);
        assert_eq!(out.len(), 2);
    }
}
