//! A single-label CNN classifier — the strawman of the paper's §I: on a
//! platter (*thali*) image it can emit exactly one label, so it
//! structurally cannot describe multi-dish images. The quickstart example
//! demonstrates this failure next to YOLOv4's multi-box output.

use platter_dataset::{BatchLoader, LoaderConfig, SyntheticDataset};
use platter_tensor::nn::{Activation, ConvBlock, Linear};
use platter_tensor::ops::Conv2dSpec;
use platter_tensor::{Adam, Graph, Mode, Param, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small plain CNN classifier.
pub struct SingleLabelClassifier {
    convs: Vec<ConvBlock>,
    head: Linear,
    /// Number of classes.
    pub num_classes: usize,
    /// Square input edge.
    pub input_size: usize,
}

impl SingleLabelClassifier {
    /// Build with 4 downsampling stages.
    pub fn new(num_classes: usize, input_size: usize, width: usize, seed: u64) -> SingleLabelClassifier {
        let mut rng = StdRng::seed_from_u64(seed);
        let relu = Activation::Relu;
        let mut convs = Vec::new();
        let mut cin = 3;
        for i in 0..4 {
            let cout = width << i;
            convs.push(ConvBlock::new(&format!("clf.c{i}"), cin, cout, 3, Conv2dSpec::down(3), relu, &mut rng));
            cin = cout;
        }
        let head = Linear::new("clf.fc", cin, num_classes, &mut rng);
        SingleLabelClassifier { convs, head, num_classes, input_size }
    }

    /// Forward to `[n, classes]` logits. Eager-only: global average pooling
    /// is a training-path op the inference IR has no use for.
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool) -> Var {
        let mode = Mode::from_training(training);
        let mut h = x;
        for c in &self.convs {
            h = c.trace(g, h, mode);
        }
        let pooled = g.global_avg_pool(h);
        self.head.trace(g, pooled)
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> Vec<Param> {
        let mut p: Vec<Param> = self.convs.iter().flat_map(|c| c.parameters()).collect();
        p.extend(self.head.parameters());
        p
    }

    /// Predict the single label per image.
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        let mut g = Graph::inference();
        let xv = g.leaf(x.clone());
        let logits = self.forward(&mut g, xv, false);
        let lv = g.value(logits);
        let k = self.num_classes;
        (0..lv.shape()[0])
            .map(|i| {
                lv.as_slice()[i * k..(i + 1) * k]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Train the classifier on the dataset's *single-dish* images (a platter
/// has no single true label). Labels are each image's first annotation.
pub fn train_classifier(
    model: &SingleLabelClassifier,
    dataset: &SyntheticDataset,
    indices: &[usize],
    iterations: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<f32> {
    let single: Vec<usize> = indices
        .iter()
        .copied()
        .filter(|&i| !dataset.items[i].is_platter())
        .collect();
    let mut cfg = LoaderConfig::train(batch_size, model.input_size, seed);
    cfg.mosaic_prob = 0.0;
    let mut loader = BatchLoader::new(dataset, &single, cfg);
    let mut opt = Adam::new(model.parameters(), 1e-4);
    let mut history = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let batch = loader.next_batch();
        let labels: Vec<usize> = batch.annotations.iter().map(|a| a.first().map(|x| x.class).unwrap_or(0)).collect();
        let x = Tensor::from_vec(batch.data, &batch.shape);
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let logits = model.forward(&mut g, xv, true);
        let loss = g.softmax_cross_entropy(logits, &labels);
        g.backward(loss);
        opt.step(1e-3);
        opt.zero_grad();
        history.push(g.value(loss).item());
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use platter_dataset::{ClassSet, DatasetSpec};

    #[test]
    fn forward_shape_and_predict() {
        let clf = SingleLabelClassifier::new(10, 64, 8, 1);
        let preds = clf.predict(&Tensor::zeros(&[3, 3, 64, 64]));
        assert_eq!(preds.len(), 3);
        assert!(preds.iter().all(|&p| p < 10));
    }

    #[test]
    fn emits_exactly_one_label_per_image() {
        // The structural limitation: even for a 3-dish platter tensor there
        // is one output label.
        let clf = SingleLabelClassifier::new(10, 64, 8, 2);
        let preds = clf.predict(&Tensor::zeros(&[1, 3, 64, 64]));
        assert_eq!(preds.len(), 1);
    }

    #[test]
    fn training_reduces_ce() {
        let ds = SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 20, 64, 3));
        let indices: Vec<usize> = (0..ds.len()).collect();
        let clf = SingleLabelClassifier::new(10, 64, 6, 4);
        let h = train_classifier(&clf, &ds, &indices, 24, 4, 5);
        let first: f32 = h[..6].iter().sum::<f32>() / 6.0;
        let last: f32 = h[h.len() - 6..].iter().sum::<f32>() / 6.0;
        assert!(last < first, "CE should trend down: {first} → {last}");
    }
}
