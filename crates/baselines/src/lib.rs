//! # platter-baselines
//!
//! The comparators of the paper's Table III, re-implemented on the same
//! substrate and data: an **SSD + Inception-style** single-shot detector
//! (stand-in for Ramesh et al.'s SSD+InceptionV2, 76.9% mAP), a dated
//! **single-scale grid detector** (stand-in for the BTBU-Food-60 pipeline,
//! 67.7%), and a **single-label CNN classifier** demonstrating the paper's
//! §I claim that classification fails on multi-dish platters.

pub mod classifier;
pub mod inception;
pub mod legacy;
pub mod priors;
pub mod ssd;

pub use classifier::{train_classifier, SingleLabelClassifier};
pub use inception::{InceptionBackbone, InceptionBlock};
pub use legacy::{train_legacy, LegacyConfig, LegacyDetector};
pub use priors::{decode, encode, generate_priors, micro_specs, PriorSpec, PRIORS_PER_CELL};
pub use ssd::{train_ssd, SsdConfig, SsdDetector, SsdTrainRecord};
