//! The SSD + Inception baseline of Table III (Ramesh et al. achieved 76.9%
//! mAP with SSD+InceptionV2): multibox priors over three feature maps,
//! softmax classification with hard negative mining, smooth-L1 offset
//! regression, trained on the same data as YOLOv4.

use std::cell::RefCell;

use platter_dataset::{Annotation, BatchLoader, LoaderConfig, SyntheticDataset};
use platter_imaging::NormBox;
use platter_tensor::nn::{Activation, ConvBlock};
use platter_tensor::ops::Conv2dSpec;
use platter_tensor::{
    clip_global_norm, ExecError, Executor, Graph, LrSchedule, Mode, Param, Planner, Sgd, Tensor,
    Trace, Var,
};
use platter_yolo::{nms, Detection, NmsKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::inception::InceptionBackbone;
use crate::priors::{decode, encode, generate_priors, micro_specs, PriorSpec, PRIORS_PER_CELL};

/// SSD configuration.
#[derive(Clone, Debug)]
pub struct SsdConfig {
    /// Number of object classes (background is added internally).
    pub num_classes: usize,
    /// Square input edge.
    pub input_size: usize,
    /// Backbone base width.
    pub width: usize,
    /// Prior specs (must match the backbone's three output grids).
    pub specs: Vec<PriorSpec>,
    /// Positive-match IoU threshold.
    pub match_iou: f32,
    /// Hard-negative : positive ratio.
    pub neg_ratio: usize,
}

impl SsdConfig {
    /// Micro profile matching the YOLOv4-micro experiment scale.
    pub fn micro(num_classes: usize) -> SsdConfig {
        SsdConfig {
            num_classes,
            input_size: 64,
            width: 8,
            specs: micro_specs(),
            match_iou: 0.5,
            neg_ratio: 3,
        }
    }

    /// Channels per head: priors × (4 offsets + classes + background).
    fn head_channels(&self) -> usize {
        PRIORS_PER_CELL * (4 + self.num_classes + 1)
    }

    fn depth(&self) -> usize {
        4 + self.num_classes + 1
    }
}

/// The SSD detector.
pub struct SsdDetector {
    /// Configuration.
    pub config: SsdConfig,
    backbone: InceptionBackbone,
    heads: Vec<ConvBlock>,
    /// All priors in cell-major order matching the flattened heads.
    pub priors: Vec<NormBox>,
    /// Planned inference engine, compiled lazily on the first
    /// `detect_batch` after training (see [`SsdDetector::recompile`]).
    engine: RefCell<Option<Executor>>,
}

impl SsdDetector {
    /// Build a fresh SSD.
    pub fn new(config: SsdConfig, seed: u64) -> SsdDetector {
        let mut rng = StdRng::seed_from_u64(seed);
        let backbone = InceptionBackbone::new("ssd.backbone", config.width, &mut rng);
        let heads = backbone
            .out_channels
            .iter()
            .enumerate()
            .map(|(i, &cin)| {
                ConvBlock::without_bn(
                    &format!("ssd.head{i}"),
                    cin,
                    config.head_channels(),
                    3,
                    Conv2dSpec::same(3),
                    Activation::Linear,
                    &mut rng,
                )
            })
            .collect();
        let priors = generate_priors(&config.specs);
        SsdDetector { config, backbone, heads, priors, engine: RefCell::new(None) }
    }

    /// Trace to raw per-scale logits `[n, k·(4+c+1), g, g]` on either
    /// backend — the single definition both [`SsdDetector::forward`] and
    /// [`SsdDetector::compile_inference`] replay.
    pub fn trace<B: Trace>(&self, b: &mut B, x: B::Value, mode: Mode) -> Vec<B::Value> {
        let feats = self.backbone.trace(b, x, mode);
        feats
            .iter()
            .zip(&self.heads)
            .map(|(&f, head)| head.trace(b, f, mode))
            .collect()
    }

    /// Eager forward (thin wrapper over [`SsdDetector::trace`] for the
    /// training loop).
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool) -> Vec<Var> {
        self.trace(g, x, Mode::from_training(training))
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<Param> {
        let mut p = self.backbone.parameters();
        for h in &self.heads {
            p.extend(h.parameters());
        }
        p
    }

    /// Total parameter count.
    pub fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }

    /// Compile backbone + heads into a tape-free plan over the current
    /// weights (batch norms fold into convs, activations fuse).
    pub fn compile_inference(&self) -> Executor {
        let mut p = Planner::new();
        let s = self.config.input_size;
        let x = p.input(&[3, s, s]);
        let outs = self.trace(&mut p, x, Mode::Infer);
        Executor::new(p.finish(&outs))
    }

    /// Rebuild the planned engine from current weights; only needed when
    /// the model was trained again after a `detect_batch` call.
    pub fn recompile(&self) {
        *self.engine.borrow_mut() = Some(self.compile_inference());
    }

    /// Detect over a CHW batch tensor; returns per-image detections.
    ///
    /// Panics on a malformed batch; library callers should prefer
    /// [`SsdDetector::try_detect_batch`], which reports the mismatch as a
    /// typed [`ExecError`] instead.
    pub fn detect_batch(&self, x: &Tensor, conf_thresh: f32, nms_iou: f32) -> Vec<Vec<Detection>> {
        self.try_detect_batch(x, conf_thresh, nms_iou)
            .unwrap_or_else(|e| panic!("detect_batch: {e}"))
    }

    /// Like [`SsdDetector::detect_batch`], but a batch the compiled plan
    /// rejects (wrong rank, channels, or spatial size) surfaces as a typed
    /// [`ExecError`] rather than a panic.
    pub fn try_detect_batch(
        &self,
        x: &Tensor,
        conf_thresh: f32,
        nms_iou: f32,
    ) -> Result<Vec<Vec<Detection>>, ExecError> {
        let n = x.shape()[0];
        let mut slot = self.engine.borrow_mut();
        let exec = slot.get_or_insert_with(|| self.compile_inference());
        let heads = exec.try_run(&[x])?;
        let c = self.config.num_classes;
        let depth = self.config.depth();
        let mut out = vec![Vec::new(); n];
        let mut prior_base = 0usize;
        for (si, t) in heads.iter().enumerate() {
            let gsz = self.config.specs[si].grid;
            let plane = gsz * gsz;
            let data = t.as_slice();
            for b in 0..n {
                for row in 0..gsz {
                    for col in 0..gsz {
                        for k in 0..PRIORS_PER_CELL {
                            let prior = &self.priors[prior_base + (row * gsz + col) * PRIORS_PER_CELL + k];
                            let at = |d: usize| data[((b * PRIORS_PER_CELL + k) * depth + d) * plane + row * gsz + col];
                            // Softmax over classes + background.
                            let mut m = f32::NEG_INFINITY;
                            for d in 0..=c {
                                m = m.max(at(4 + d));
                            }
                            let mut z = 0.0f32;
                            let mut probs = vec![0.0f32; c + 1];
                            for (d, p) in probs.iter_mut().enumerate() {
                                *p = (at(4 + d) - m).exp();
                                z += *p;
                            }
                            let (mut best_c, mut best_p) = (0usize, 0.0f32);
                            for (d, p) in probs.iter().enumerate().take(c) {
                                if p / z > best_p {
                                    best_p = p / z;
                                    best_c = d;
                                }
                            }
                            if best_p < conf_thresh {
                                continue;
                            }
                            let bbox = decode([at(0), at(1), at(2), at(3)], prior);
                            if let Some(clipped) = bbox.clipped() {
                                out[b].push(Detection { class: best_c, score: best_p, bbox: clipped });
                            }
                        }
                    }
                }
            }
            prior_base += plane * PRIORS_PER_CELL;
        }
        Ok(out.into_iter().map(|dets| nms(dets, nms_iou, NmsKind::Greedy)).collect())
    }
}

/// Per-scale dense targets for the SSD loss.
struct SsdTargets {
    /// `[n,k,1,g,g]` positive mask.
    pos: Tensor,
    /// `[n,k,c+1,g,g]` one-hot class targets (background for negatives).
    onehot: Tensor,
    /// `[n,k,4,g,g]` encoded offset targets (zero off-mask).
    loc: Tensor,
    num_pos: usize,
}

fn build_ssd_targets(cfg: &SsdConfig, priors: &[NormBox], batch: &[Vec<Annotation>]) -> Vec<SsdTargets> {
    let n = batch.len();
    let c = cfg.num_classes;
    let k = PRIORS_PER_CELL;

    // First pass: per-image prior→gt matches over the flat prior list.
    // matches[img][prior] = Some(gt index)
    let mut matches: Vec<Vec<Option<usize>>> = vec![vec![None; priors.len()]; n];
    for (b, gts) in batch.iter().enumerate() {
        // Best prior per GT is always positive.
        for (gi, gt) in gts.iter().enumerate() {
            let mut best = (0usize, -1.0f32);
            for (pi, prior) in priors.iter().enumerate() {
                let iou = gt.bbox.iou(prior);
                if iou > best.1 {
                    best = (pi, iou);
                }
            }
            matches[b][best.0] = Some(gi);
        }
        // Any prior above the threshold matches its best GT.
        for (pi, prior) in priors.iter().enumerate() {
            if matches[b][pi].is_some() {
                continue;
            }
            let mut best: Option<(usize, f32)> = None;
            for (gi, gt) in gts.iter().enumerate() {
                let iou = gt.bbox.iou(prior);
                if iou >= cfg.match_iou && best.is_none_or(|(_, bi)| iou > bi) {
                    best = Some((gi, iou));
                }
            }
            if let Some((gi, _)) = best {
                matches[b][pi] = Some(gi);
            }
        }
    }

    // Second pass: scatter into per-scale dense tensors.
    let mut out = Vec::with_capacity(cfg.specs.len());
    let mut prior_base = 0usize;
    for spec in &cfg.specs {
        let gsz = spec.grid;
        let plane = gsz * gsz;
        let mut pos = vec![0.0f32; n * k * plane];
        let mut onehot = vec![0.0f32; n * k * (c + 1) * plane];
        let mut loc = vec![0.0f32; n * k * 4 * plane];
        let mut num_pos = 0usize;
        for b in 0..n {
            for cell in 0..plane {
                for kk in 0..k {
                    let pi = prior_base + cell * k + kk;
                    let (row, col) = (cell / gsz, cell % gsz);
                    let pos_idx = (b * k + kk) * plane + row * gsz + col;
                    match matches[b][pi] {
                        Some(gi) => {
                            let gt = &batch[b][gi];
                            pos[pos_idx] = 1.0;
                            num_pos += 1;
                            let enc = encode(&gt.bbox, &priors[pi]);
                            for (d, v) in enc.into_iter().enumerate() {
                                loc[((b * k + kk) * 4 + d) * plane + row * gsz + col] = v;
                            }
                            onehot[((b * k + kk) * (c + 1) + gt.class) * plane + row * gsz + col] = 1.0;
                        }
                        None => {
                            // Background one-hot.
                            onehot[((b * k + kk) * (c + 1) + c) * plane + row * gsz + col] = 1.0;
                        }
                    }
                }
            }
        }
        out.push(SsdTargets {
            pos: Tensor::from_vec(pos, &[n, k, 1, gsz, gsz]),
            onehot: Tensor::from_vec(onehot, &[n, k, c + 1, gsz, gsz]),
            loc: Tensor::from_vec(loc, &[n, k, 4, gsz, gsz]),
            num_pos,
        });
        prior_base += plane * k;
    }
    out
}

/// Per-position max over axis 2 of a `[n,k,d,g,g]` tensor (stability shift
/// for the softmax CE; detached by construction).
fn max_axis2(t: &Tensor) -> Tensor {
    let s = t.shape();
    let (n, k, d, g1, g2) = (s[0], s[1], s[2], s[3], s[4]);
    let mut out = vec![f32::NEG_INFINITY; n * k * g1 * g2];
    let data = t.as_slice();
    for b in 0..n {
        for kk in 0..k {
            for dd in 0..d {
                let base = ((b * k + kk) * d + dd) * g1 * g2;
                let obase = (b * k + kk) * g1 * g2;
                for p in 0..g1 * g2 {
                    let v = data[base + p];
                    if v > out[obase + p] {
                        out[obase + p] = v;
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, k, 1, g1, g2])
}

/// SSD multibox loss: smooth-L1 on positives + softmax CE with 3:1 hard
/// negative mining. Returns `(loss_var, loc_value, cls_value)`.
fn ssd_loss(g: &mut Graph, heads: &[Var], targets: &[SsdTargets], cfg: &SsdConfig) -> (Var, f32, f32) {
    let c = cfg.num_classes;
    let total_pos: usize = targets.iter().map(|t| t.num_pos).sum();
    let norm = total_pos.max(1) as f32;
    let mut total: Option<Var> = None;
    let mut loc_val = 0.0f32;
    let mut cls_val = 0.0f32;

    for (si, (&head, t)) in heads.iter().zip(targets).enumerate() {
        let gsz = cfg.specs[si].grid;
        let n = g.shape(head)[0];
        let raw = g.reshape(head, &[n, PRIORS_PER_CELL, cfg.depth(), gsz, gsz]);

        // Localization: smooth-L1 at positives.
        let offsets = g.narrow(raw, 2, 0, 4);
        let l1 = g.smooth_l1(offsets, &t.loc);
        let pos = g.constant(t.pos.clone());
        let l1m = g.mul(l1, pos);
        let l1s = g.sum_all(l1m);
        let loc_term = g.mul_scalar(l1s, 1.0 / norm);

        // Classification: dense per-prior CE (log-sum-exp − target logit).
        let cls = g.narrow(raw, 2, 4, c + 1);
        let m = g.constant(max_axis2(g.value(cls)));
        let shifted = g.sub(cls, m);
        let e = g.exp(shifted);
        let z = g.sum_axes(e, &[2]);
        let lz = g.ln(z);
        let lse = g.add(lz, m);
        let onehot = g.constant(t.onehot.clone());
        let picked = g.mul(cls, onehot);
        let tgt = g.sum_axes(picked, &[2]);
        let ce = g.sub(lse, tgt); // [n,k,1,g,g]

        // Hard negative mining from the CE *values*.
        let ce_vals = g.value(ce).clone();
        let mut weight = t.pos.clone();
        {
            let w = weight.as_mut_slice();
            let cev = ce_vals.as_slice();
            let posm = t.pos.as_slice();
            let per_img = w.len() / n;
            for b in 0..n {
                let lo = b * per_img;
                let hi = lo + per_img;
                let img_pos = posm[lo..hi].iter().filter(|&&v| v == 1.0).count();
                let quota = cfg.neg_ratio * img_pos.max(1);
                let mut negs: Vec<(usize, f32)> = (lo..hi)
                    .filter(|&i| posm[i] == 0.0)
                    .map(|i| (i, cev[i]))
                    .collect();
                negs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                for &(i, _) in negs.iter().take(quota) {
                    w[i] = 1.0;
                }
            }
        }
        let wmask = g.constant(weight);
        let cem = g.mul(ce, wmask);
        let ces = g.sum_all(cem);
        let cls_term = g.mul_scalar(ces, 1.0 / norm);

        loc_val += g.value(loc_term).item();
        cls_val += g.value(cls_term).item();
        let scale_loss = g.add(loc_term, cls_term);
        total = Some(match total {
            Some(acc) => g.add(acc, scale_loss),
            None => scale_loss,
        });
    }
    (total.expect("at least one scale"), loc_val, cls_val)
}

/// One logged SSD training step.
#[derive(Clone, Copy, Debug)]
pub struct SsdTrainRecord {
    pub iteration: usize,
    pub loss: f32,
    pub loc_loss: f32,
    pub cls_loss: f32,
}

/// Train an SSD on `indices` of `dataset` for `iterations` batches.
pub fn train_ssd(
    model: &SsdDetector,
    dataset: &SyntheticDataset,
    indices: &[usize],
    iterations: usize,
    batch_size: usize,
    lr: f32,
    seed: u64,
) -> Vec<SsdTrainRecord> {
    let mut loader_cfg = LoaderConfig::train(batch_size, model.config.input_size, seed);
    loader_cfg.mosaic_prob = 0.0; // SSD's original recipe has no mosaic
    let mut loader = BatchLoader::new(dataset, indices, loader_cfg);
    let schedule = LrSchedule::darknet(lr, iterations);
    let mut opt = Sgd::new(model.parameters(), 0.9, 5e-4);
    let mut history = Vec::with_capacity(iterations);
    for iter in 0..iterations {
        let batch = loader.next_batch();
        let x = Tensor::from_vec(batch.data, &batch.shape);
        let targets = build_ssd_targets(&model.config, &model.priors, &batch.annotations);
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let heads = model.forward(&mut g, xv, true);
        let (loss, loc_loss, cls_loss) = ssd_loss(&mut g, &heads, &targets, &model.config);
        g.backward(loss);
        clip_global_norm(&model.parameters(), 10.0);
        opt.step(schedule.lr_at(iter));
        opt.zero_grad();
        history.push(SsdTrainRecord {
            iteration: iter + 1,
            loss: g.value(loss).item(),
            loc_loss,
            cls_loss,
        });
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use platter_dataset::{ClassSet, DatasetSpec};

    #[test]
    fn forward_shapes() {
        let model = SsdDetector::new(SsdConfig::micro(10), 1);
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::zeros(&[2, 3, 64, 64]));
        let heads = model.forward(&mut g, x, false);
        assert_eq!(heads.len(), 3);
        assert_eq!(g.shape(heads[0]), &[2, 60, 8, 8]);
        assert_eq!(g.shape(heads[2]), &[2, 60, 2, 2]);
        assert_eq!(model.priors.len(), (64 + 16 + 4) * 4);
    }

    #[test]
    fn targets_mark_positives_for_each_gt() {
        let cfg = SsdConfig::micro(10);
        let model = SsdDetector::new(cfg.clone(), 2);
        let batch = vec![vec![
            Annotation { class: 3, bbox: NormBox::new(0.5, 0.5, 0.4, 0.4) },
            Annotation { class: 7, bbox: NormBox::new(0.2, 0.2, 0.2, 0.2) },
        ]];
        let targets = build_ssd_targets(&cfg, &model.priors, &batch);
        let total_pos: usize = targets.iter().map(|t| t.num_pos).sum();
        assert!(total_pos >= 2, "every GT gets at least its best prior");
        // One-hot rows always sum to 1 (class or background).
        for t in &targets {
            let n_cells = t.pos.numel();
            assert!((t.onehot.sum() - n_cells as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn loss_is_finite_and_backprops() {
        let cfg = SsdConfig::micro(6);
        let model = SsdDetector::new(cfg.clone(), 3);
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[2, 3, 64, 64], &mut rng).map(|v| v * 0.2 + 0.5);
        let batch = vec![
            vec![Annotation { class: 1, bbox: NormBox::new(0.5, 0.5, 0.35, 0.3) }],
            vec![Annotation { class: 4, bbox: NormBox::new(0.3, 0.6, 0.25, 0.25) }],
        ];
        let targets = build_ssd_targets(&cfg, &model.priors, &batch);
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let heads = model.forward(&mut g, xv, true);
        let (loss, loc, cls) = ssd_loss(&mut g, &heads, &targets, &cfg);
        let v = g.value(loss).item();
        assert!(v.is_finite() && v > 0.0);
        assert!(loc >= 0.0 && cls > 0.0);
        g.backward(loss);
        let live = model.parameters().iter().filter(|p| p.grad().as_slice().iter().any(|&x| x != 0.0)).count();
        assert!(live > 10, "{live} params with gradient");
    }

    #[test]
    fn short_training_reduces_loss() {
        let ds = SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 12, 64, 5));
        let indices: Vec<usize> = (0..ds.len()).collect();
        let model = SsdDetector::new(SsdConfig::micro(10), 6);
        let history = train_ssd(&model, &ds, &indices, 24, 2, 5e-3, 7);
        assert_eq!(history.len(), 24);
        assert!(history.iter().all(|r| r.loss.is_finite()));
        let first: f32 = history[..6].iter().map(|r| r.loss).sum::<f32>() / 6.0;
        let last: f32 = history[history.len() - 6..].iter().map(|r| r.loss).sum::<f32>() / 6.0;
        assert!(last < first, "loss should trend down: {first} → {last}");
    }

    #[test]
    fn detect_batch_contract() {
        let model = SsdDetector::new(SsdConfig::micro(10), 8);
        let out = model.detect_batch(&Tensor::zeros(&[2, 3, 64, 64]), 0.3, 0.45);
        assert_eq!(out.len(), 2);
        for dets in &out {
            for d in dets {
                assert!(d.class < 10);
                assert!(d.bbox.is_valid());
            }
        }
    }
}
