//! SSD default boxes ("priors"): per feature-map cell, a small set of
//! boxes at fixed scales and aspect ratios, plus the offset encoding SSD
//! regresses against.

use platter_imaging::NormBox;

/// SSD's offset-encoding variances.
pub const VAR_XY: f32 = 0.1;
pub const VAR_WH: f32 = 0.2;

/// Prior-box configuration for one feature map.
#[derive(Clone, Copy, Debug)]
pub struct PriorSpec {
    /// Feature-map edge (cells).
    pub grid: usize,
    /// Base scale of the boxes (normalised).
    pub scale: f32,
    /// Extra scale for the additional square box (geometric mean style).
    pub scale_next: f32,
}

/// Aspect ratios used per cell (1, 2, ½) plus the extra square → 4 priors.
pub const PRIORS_PER_CELL: usize = 4;

/// Generate the priors for a set of feature maps (normalised cx/cy/w/h,
/// row-major cell order, specs in order).
pub fn generate_priors(specs: &[PriorSpec]) -> Vec<NormBox> {
    let mut out = Vec::new();
    for spec in specs {
        let g = spec.grid as f32;
        for row in 0..spec.grid {
            for col in 0..spec.grid {
                let cx = (col as f32 + 0.5) / g;
                let cy = (row as f32 + 0.5) / g;
                let s = spec.scale;
                let s2 = (spec.scale * spec.scale_next).sqrt();
                let r2 = 2.0f32.sqrt();
                out.push(NormBox::new(cx, cy, s, s));
                out.push(NormBox::new(cx, cy, s2, s2));
                out.push(NormBox::new(cx, cy, s * r2, s / r2));
                out.push(NormBox::new(cx, cy, s / r2, s * r2));
            }
        }
    }
    out
}

/// Standard specs for a 64-px input with 8/4/2 feature maps.
pub fn micro_specs() -> Vec<PriorSpec> {
    vec![
        PriorSpec { grid: 8, scale: 0.2, scale_next: 0.42 },
        PriorSpec { grid: 4, scale: 0.42, scale_next: 0.64 },
        PriorSpec { grid: 2, scale: 0.64, scale_next: 0.9 },
    ]
}

/// Encode a ground-truth box against a prior (SSD's `(g − p)/p/var` form).
pub fn encode(gt: &NormBox, prior: &NormBox) -> [f32; 4] {
    [
        (gt.cx - prior.cx) / (prior.w * VAR_XY),
        (gt.cy - prior.cy) / (prior.h * VAR_XY),
        (gt.w / prior.w).max(1e-6).ln() / VAR_WH,
        (gt.h / prior.h).max(1e-6).ln() / VAR_WH,
    ]
}

/// Decode predicted offsets against a prior.
pub fn decode(offsets: [f32; 4], prior: &NormBox) -> NormBox {
    NormBox {
        cx: prior.cx + offsets[0] * VAR_XY * prior.w,
        cy: prior.cy + offsets[1] * VAR_XY * prior.h,
        w: prior.w * (offsets[2] * VAR_WH).clamp(-6.0, 6.0).exp(),
        h: prior.h * (offsets[3] * VAR_WH).clamp(-6.0, 6.0).exp(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_count_matches_grids() {
        let priors = generate_priors(&micro_specs());
        assert_eq!(priors.len(), (64 + 16 + 4) * PRIORS_PER_CELL);
    }

    #[test]
    fn priors_are_centred_in_cells() {
        let priors = generate_priors(&[PriorSpec { grid: 2, scale: 0.5, scale_next: 0.7 }]);
        // First cell centre is (0.25, 0.25).
        assert!((priors[0].cx - 0.25).abs() < 1e-6);
        assert!((priors[0].cy - 0.25).abs() < 1e-6);
        // Last cell centre is (0.75, 0.75).
        assert!((priors.last().unwrap().cx - 0.75).abs() < 1e-6);
    }

    #[test]
    fn encode_decode_round_trip() {
        let prior = NormBox::new(0.5, 0.5, 0.3, 0.3);
        let gt = NormBox::new(0.55, 0.42, 0.25, 0.4);
        let enc = encode(&gt, &prior);
        let back = decode(enc, &prior);
        assert!((back.cx - gt.cx).abs() < 1e-5);
        assert!((back.cy - gt.cy).abs() < 1e-5);
        assert!((back.w - gt.w).abs() < 1e-5);
        assert!((back.h - gt.h).abs() < 1e-5);
    }

    #[test]
    fn identical_boxes_encode_to_zero() {
        let prior = NormBox::new(0.3, 0.7, 0.2, 0.25);
        let enc = encode(&prior.clone(), &prior);
        for v in enc {
            assert!(v.abs() < 1e-6);
        }
    }

    #[test]
    fn aspect_ratio_priors_cover_wide_and_tall() {
        let priors = generate_priors(&[PriorSpec { grid: 1, scale: 0.4, scale_next: 0.6 }]);
        assert_eq!(priors.len(), 4);
        assert!(priors[2].w > priors[2].h, "wide prior");
        assert!(priors[3].h > priors[3].w, "tall prior");
    }
}
