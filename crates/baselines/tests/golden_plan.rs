//! Golden structural snapshots of the compiled inference plans.
//!
//! The planner's value comes from two structural properties: batch norms
//! fold into conv weights (no `scale_bias` ops survive) and activations
//! fuse into the producing op (no standalone `act` ops survive). A
//! regression in either keeps the outputs bit-for-bit compatible while
//! silently costing a full extra pass over every feature map — parity
//! tests cannot see it. These snapshots pin the exact op-kind sequence
//! and arena slot count of the micro YOLOv4 and SSD plans, so a lost
//! fusion (or a planner that suddenly needs more memory) fails loudly.
//!
//! When a deliberate planner change shifts these, regenerate by printing
//! `plan.op_kinds()` / `plan.num_slots()` and updating the constants.

use platter_baselines::{SsdConfig, SsdDetector};
use platter_yolo::{YoloConfig, Yolov4};

/// Run-length compact an op-kind sequence: `conv2d[Mish]` repeated six
/// times becomes `conv2d[Mish]x6`, keeping the snapshot readable.
fn compact(kinds: &[String]) -> Vec<String> {
    let mut out: Vec<(String, usize)> = Vec::new();
    for k in kinds {
        match out.last_mut() {
            Some((prev, n)) if prev == k => *n += 1,
            _ => out.push((k.clone(), 1)),
        }
    }
    out.into_iter().map(|(k, n)| if n == 1 { k } else { format!("{k}x{n}") }).collect()
}

const YOLO_MICRO_KINDS: &[&str] = &[
    "input",
    // CSPDarknet: five stages of down-conv + split + residual + merge.
    "conv2d[Mish]x6", "add", "conv2d[Mish]", "concat2",
    "conv2d[Mish]x6", "add", "conv2d[Mish]", "concat2",
    "conv2d[Mish]x6", "add", "conv2d[Mish]", "concat2",
    "conv2d[Mish]x6", "add", "conv2d[Mish]", "concat2",
    "conv2d[Mish]x6", "add", "conv2d[Mish]", "concat2",
    "conv2d[Mish]",
    // SPP: three parallel maxpools over the stride-32 map, concatenated.
    "conv2d[Leaky]x3", "maxpool3s1x3", "concat4",
    // PANet top-down then bottom-up.
    "conv2d[Leaky]x4", "upsample2", "conv2d[Leaky]", "concat2",
    "conv2d[Leaky]x6", "upsample2", "conv2d[Leaky]", "concat2",
    "conv2d[Leaky]x6", "concat2", "conv2d[Leaky]x6", "concat2", "conv2d[Leaky]x6",
    // Three detection heads (expand + linear projection each).
    "conv2d[Linear]", "conv2d[Leaky]", "conv2d[Linear]", "conv2d[Leaky]", "conv2d[Linear]",
];

const SSD_MICRO_KINDS: &[&str] = &[
    "input",
    // Stem + down + three inception blocks (4-branch concat each), with
    // the three SSD heads at the end.
    "conv2d[Relu]x9", "maxpool3s1", "conv2d[Relu]", "concat4",
    "conv2d[Relu]x7", "maxpool3s1", "conv2d[Relu]", "concat4",
    "conv2d[Relu]x7", "maxpool3s1", "conv2d[Relu]", "concat4",
    "conv2d[Linear]x3",
];

#[test]
fn yolov4_micro_plan_structure_is_golden() {
    let model = Yolov4::new(YoloConfig::micro(10), 1);
    let engine = model.compile_inference();
    let plan = engine.plan();
    let kinds = compact(&plan.op_kinds());
    assert_eq!(kinds, YOLO_MICRO_KINDS, "YOLOv4-micro op sequence drifted");
    assert_eq!(plan.num_slots(), 7, "YOLOv4-micro arena slot count drifted");
    // The properties the snapshot encodes, stated directly: no unfused ops.
    for k in plan.op_kinds() {
        assert!(!k.starts_with("scale_bias"), "unfolded batch norm survived: {k}");
        assert!(!k.starts_with("act["), "unfused activation survived: {k}");
    }
}

#[test]
fn ssd_micro_plan_structure_is_golden() {
    let model = SsdDetector::new(SsdConfig::micro(10), 1);
    let exec = model.compile_inference();
    let plan = exec.plan();
    let kinds = compact(&plan.op_kinds());
    assert_eq!(kinds, SSD_MICRO_KINDS, "SSD-micro op sequence drifted");
    assert_eq!(plan.num_slots(), 7, "SSD-micro arena slot count drifted");
    for k in plan.op_kinds() {
        assert!(!k.starts_with("scale_bias"), "unfolded batch norm survived: {k}");
        assert!(!k.starts_with("act["), "unfused activation survived: {k}");
    }
}
