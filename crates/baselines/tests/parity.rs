//! Parity between the eager tape and the planned engine for the baseline
//! models, on the same shared helpers (`platter_tensor::parity`) and bounds
//! as the YOLOv4 parity suite. Both models batch-normalise heavily, so the
//! randomised BN statistics exercise the planner's conv+BN folding with
//! non-trivial scales and shifts.

use platter_baselines::{InceptionBackbone, SsdConfig, SsdDetector};
use platter_tensor::parity::{assert_outputs_match, randomize_bn_stats};
use platter_tensor::{Executor, Graph, Mode, Planner, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn ssd_heads_match_eager() {
    let config = SsdConfig::micro(10);
    let size = config.input_size;
    let model = SsdDetector::new(config, 41);
    randomize_bn_stats(&model.parameters(), 42);
    let mut rng = StdRng::seed_from_u64(43);
    let x = Tensor::rand_uniform(&[2, 3, size, size], 0.0, 1.0, &mut rng);

    let mut g = Graph::inference();
    let xv = g.leaf(x.clone());
    let heads = model.trace(&mut g, xv, Mode::Infer);
    let eager: Vec<Tensor> = heads.iter().map(|&h| g.value(h).clone()).collect();

    let mut exec = model.compile_inference();
    let compiled = exec.run(&[&x]);

    assert_eq!(compiled.len(), 3);
    assert_outputs_match(&eager, compiled, 2e-3, 5e-5);
}

#[test]
fn inception_backbone_features_match_eager() {
    let mut rng = StdRng::seed_from_u64(51);
    let bb = InceptionBackbone::new("bb", 8, &mut rng);
    randomize_bn_stats(&bb.parameters(), 52);
    let x = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, &mut rng);

    let mut g = Graph::inference();
    let xv = g.leaf(x.clone());
    let feats = bb.trace(&mut g, xv, Mode::Infer);
    let eager: Vec<Tensor> = feats.iter().map(|&f| g.value(f).clone()).collect();

    let mut p = Planner::new();
    let xi = p.input(&[3, 64, 64]);
    let outs = bb.trace(&mut p, xi, Mode::Infer);
    let mut exec = Executor::new(p.finish(&outs));
    let compiled = exec.run(&[&x]);

    assert_eq!(compiled.len(), 3);
    assert_outputs_match(&eager, compiled, 2e-3, 5e-5);
}
