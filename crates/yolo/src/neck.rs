//! YOLOv4's neck: SPP (spatial pyramid pooling) on the deepest features and
//! PANet (path-aggregation: top-down + bottom-up) feature fusion, with
//! LeakyReLU activations as in darknet's head-side convs.

use platter_tensor::nn::{Activation, ConvBlock};
use platter_tensor::ops::Conv2dSpec;
use platter_tensor::{Mode, Param, Trace, Var};
use rand::Rng;

use crate::backbone::BackboneFeatures;
use crate::config::YoloConfig;

/// SPP block: 1×1/3×3/1×1 bottleneck, then parallel max-pools of kernel
/// {5, 9, 13} (stride 1) concatenated with the identity, then 1×1/3×3/1×1.
pub struct Spp {
    pre: Vec<ConvBlock>,
    post: Vec<ConvBlock>,
}

impl Spp {
    fn new<R: Rng + ?Sized>(name: &str, cin: usize, rng: &mut R) -> Spp {
        let half = (cin / 2).max(2);
        let leaky = Activation::Leaky;
        Spp {
            pre: vec![
                ConvBlock::new(&format!("{name}.pre0"), cin, half, 1, Conv2dSpec::same(1), leaky, rng),
                ConvBlock::new(&format!("{name}.pre1"), half, cin, 3, Conv2dSpec::same(3), leaky, rng),
                ConvBlock::new(&format!("{name}.pre2"), cin, half, 1, Conv2dSpec::same(1), leaky, rng),
            ],
            post: vec![
                ConvBlock::new(&format!("{name}.post0"), half * 4, half, 1, Conv2dSpec::same(1), leaky, rng),
                ConvBlock::new(&format!("{name}.post1"), half, cin, 3, Conv2dSpec::same(3), leaky, rng),
                ConvBlock::new(&format!("{name}.post2"), cin, half, 1, Conv2dSpec::same(1), leaky, rng),
            ],
        }
    }

    fn trace<B: Trace>(&self, b: &mut B, x: B::Value, mode: Mode) -> B::Value {
        let mut h = x;
        for c in &self.pre {
            h = c.trace(b, h, mode);
        }
        // Clamp pool kernels to the feature size so the micro profile's 2×2
        // deepest grid still pools meaningfully. `item_shape` is [c,h,w] on
        // both backends.
        let shape = b.item_shape(h);
        let dim = shape[1].min(shape[2]);
        let kernels = [5usize, 9, 13].map(|k| k.min(if dim.is_multiple_of(2) { dim + 1 } else { dim }));
        let pools: Vec<B::Value> = kernels
            .iter()
            .map(|&k| b.maxpool2d(h, k, 1, k / 2))
            .collect();
        let cat = b.concat_channels(&[pools[2], pools[1], pools[0], h]);
        let mut out = cat;
        for c in &self.post {
            out = c.trace(b, out, mode);
        }
        out
    }

    fn parameters(&self) -> Vec<Param> {
        self.pre.iter().chain(&self.post).flat_map(|c| c.parameters()).collect()
    }
}

/// Five-conv fusion stack used at every PANet merge point.
struct ConvStack {
    convs: Vec<ConvBlock>,
}

impl ConvStack {
    fn new<R: Rng + ?Sized>(name: &str, cin: usize, cout: usize, rng: &mut R) -> ConvStack {
        let leaky = Activation::Leaky;
        ConvStack {
            convs: vec![
                ConvBlock::new(&format!("{name}.c0"), cin, cout, 1, Conv2dSpec::same(1), leaky, rng),
                ConvBlock::new(&format!("{name}.c1"), cout, cout * 2, 3, Conv2dSpec::same(3), leaky, rng),
                ConvBlock::new(&format!("{name}.c2"), cout * 2, cout, 1, Conv2dSpec::same(1), leaky, rng),
                ConvBlock::new(&format!("{name}.c3"), cout, cout * 2, 3, Conv2dSpec::same(3), leaky, rng),
                ConvBlock::new(&format!("{name}.c4"), cout * 2, cout, 1, Conv2dSpec::same(1), leaky, rng),
            ],
        }
    }

    fn trace<B: Trace>(&self, b: &mut B, x: B::Value, mode: Mode) -> B::Value {
        let mut h = x;
        for c in &self.convs {
            h = c.trace(b, h, mode);
        }
        h
    }

    fn parameters(&self) -> Vec<Param> {
        self.convs.iter().flat_map(|c| c.parameters()).collect()
    }
}

/// Fused neck outputs, one per detection scale. Generic over the handle
/// type, like [`BackboneFeatures`].
pub struct NeckFeatures<H = Var> {
    /// Stride-8 fused features.
    pub p3: H,
    /// Stride-16 fused features.
    pub p4: H,
    /// Stride-32 fused features.
    pub p5: H,
}

/// SPP + PANet.
pub struct PanNeck {
    spp: Spp,
    lat4: ConvBlock,
    lat3: ConvBlock,
    up5: ConvBlock,
    up4: ConvBlock,
    td4: ConvStack,
    td3: ConvStack,
    down3: ConvBlock,
    bu4: ConvStack,
    down4: ConvBlock,
    bu5: ConvStack,
}

impl PanNeck {
    /// Build the neck for `cfg` under serialization prefix `name`.
    pub fn new<R: Rng + ?Sized>(name: &str, cfg: &YoloConfig, rng: &mut R) -> PanNeck {
        let leaky = Activation::Leaky;
        let (c3, c4, c5) = (cfg.channels(3), cfg.channels(4), cfg.channels(5));
        let (h3, h4, h5) = (c3 / 2, c4 / 2, c5 / 2);
        PanNeck {
            spp: Spp::new(&format!("{name}.spp"), c5, rng),
            // Top-down: upsampled deep features meet 1×1-lateralled shallow ones.
            up5: ConvBlock::new(&format!("{name}.up5"), h5, h4, 1, Conv2dSpec::same(1), leaky, rng),
            lat4: ConvBlock::new(&format!("{name}.lat4"), c4, h4, 1, Conv2dSpec::same(1), leaky, rng),
            td4: ConvStack::new(&format!("{name}.td4"), h4 * 2, h4, rng),
            up4: ConvBlock::new(&format!("{name}.up4"), h4, h3, 1, Conv2dSpec::same(1), leaky, rng),
            lat3: ConvBlock::new(&format!("{name}.lat3"), c3, h3, 1, Conv2dSpec::same(1), leaky, rng),
            td3: ConvStack::new(&format!("{name}.td3"), h3 * 2, h3, rng),
            // Bottom-up path aggregation.
            down3: ConvBlock::new(&format!("{name}.down3"), h3, h4, 3, Conv2dSpec::down(3), leaky, rng),
            bu4: ConvStack::new(&format!("{name}.bu4"), h4 * 2, h4, rng),
            down4: ConvBlock::new(&format!("{name}.down4"), h4, h5, 3, Conv2dSpec::down(3), leaky, rng),
            bu5: ConvStack::new(&format!("{name}.bu5"), h5 * 2, h5, rng),
        }
    }

    /// Trace the neck onto a backend, fusing backbone features across
    /// scales.
    pub fn trace<B: Trace>(
        &self,
        b: &mut B,
        f: &BackboneFeatures<B::Value>,
        mode: Mode,
    ) -> NeckFeatures<B::Value> {
        // SPP leaves c5 at half width (post2 outputs h5).
        let s5 = self.spp.trace(b, f.c5, mode);

        // Top-down to stride 16.
        let u5 = self.up5.trace(b, s5, mode);
        let u5 = b.upsample_nearest(u5, 2);
        let l4 = self.lat4.trace(b, f.c4, mode);
        let cat4 = b.concat_channels(&[l4, u5]);
        let t4 = self.td4.trace(b, cat4, mode);

        // Top-down to stride 8.
        let u4 = self.up4.trace(b, t4, mode);
        let u4 = b.upsample_nearest(u4, 2);
        let l3 = self.lat3.trace(b, f.c3, mode);
        let cat3 = b.concat_channels(&[l3, u4]);
        let p3 = self.td3.trace(b, cat3, mode);

        // Bottom-up aggregation.
        let d3 = self.down3.trace(b, p3, mode);
        let cat4b = b.concat_channels(&[d3, t4]);
        let p4 = self.bu4.trace(b, cat4b, mode);

        let d4 = self.down4.trace(b, p4, mode);
        let cat5 = b.concat_channels(&[d4, s5]);
        let p5 = self.bu5.trace(b, cat5, mode);

        NeckFeatures { p3, p4, p5 }
    }

    /// All neck parameters.
    pub fn parameters(&self) -> Vec<Param> {
        let mut p = self.spp.parameters();
        for stack in [&self.td4, &self.td3, &self.bu4, &self.bu5] {
            p.extend(stack.parameters());
        }
        for conv in [&self.up5, &self.lat4, &self.up4, &self.lat3, &self.down3, &self.down4] {
            p.extend(conv.parameters());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::CspDarknet;
    use platter_tensor::{Graph, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(cfg: &YoloConfig, seed: u64) -> (CspDarknet, PanNeck) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bb = CspDarknet::new("backbone", cfg, &mut rng);
        let neck = PanNeck::new("neck", cfg, &mut rng);
        (bb, neck)
    }

    #[test]
    fn neck_output_shapes() {
        let cfg = YoloConfig::micro(10);
        let (bb, neck) = build(&cfg, 1);
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::zeros(&[1, 3, 64, 64]));
        let f = bb.trace(&mut g, x, Mode::Infer);
        let n = neck.trace(&mut g, &f, Mode::Infer);
        assert_eq!(g.shape(n.p3), &[1, cfg.channels(3) / 2, 8, 8]);
        assert_eq!(g.shape(n.p4), &[1, cfg.channels(4) / 2, 4, 4]);
        assert_eq!(g.shape(n.p5), &[1, cfg.channels(5) / 2, 2, 2]);
    }

    #[test]
    fn spp_preserves_spatial_size() {
        let cfg = YoloConfig::micro(10);
        let mut rng = StdRng::seed_from_u64(2);
        let spp = Spp::new("spp", cfg.channels(5), &mut rng);
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::randn(&[1, cfg.channels(5), 4, 4], &mut rng));
        let y = spp.trace(&mut g, x, Mode::Infer);
        assert_eq!(&g.shape(y)[2..], &[4, 4]);
    }

    #[test]
    fn neck_params_named_and_unique() {
        let cfg = YoloConfig::micro(10);
        let (_, neck) = build(&cfg, 3);
        let mut names: Vec<String> = neck.parameters().iter().map(|p| p.name()).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total);
        assert!(names.iter().all(|n| n.starts_with("neck.")));
    }

    #[test]
    fn gradients_flow_through_both_paths() {
        let cfg = YoloConfig::micro(4);
        let (bb, neck) = build(&cfg, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[1, 3, 64, 64], &mut rng));
        let f = bb.trace(&mut g, x, Mode::Train);
        let n = neck.trace(&mut g, &f, Mode::Train);
        // Sum all three outputs so every branch participates.
        let s3 = g.mean_all(n.p3);
        let s4 = g.mean_all(n.p4);
        let s5 = g.mean_all(n.p5);
        let a = g.add(s3, s4);
        let loss = g.add(a, s5);
        g.backward(loss);
        for p in neck.parameters().iter().take(8) {
            let _ = p.grad(); // must not panic; some may be zero
        }
        assert!(bb.parameters()[0].grad().as_slice().iter().any(|&v| v != 0.0));
    }
}
