//! # platter-yolo
//!
//! A from-scratch YOLOv4 in pure Rust — the paper's primary method:
//! CSPDarknet53 backbone (Mish), SPP + PANet neck, the three YOLOv3-style
//! anchor heads, CIoU/DIoU/GIoU box losses with darknet-style target
//! assignment, greedy and DIoU NMS, k-means anchor estimation, a darknet
//! burn-in/step training loop with checkpoint hooks, and the
//! transfer-learning flow (pretext backbone pretraining → partial weight
//! load → freeze/fine-tune).
//!
//! The full-scale profile ([`YoloConfig::full`]) matches the paper's
//! architecture dimensions; experiments run the structurally identical
//! micro profile ([`YoloConfig::micro`]) that trains on CPU (DESIGN.md §5).
//!
//! ## Example: build, train one step, detect
//!
//! ```
//! use platter_dataset::{ClassSet, DatasetSpec, Split, SyntheticDataset};
//! use platter_yolo::{train, Detector, TrainConfig, YoloConfig, Yolov4};
//!
//! let dataset = SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 8, 64, 1));
//! let split = Split::eighty_twenty(dataset.len(), 1);
//! let model = Yolov4::new(YoloConfig::micro(10), 42);
//! let mut cfg = TrainConfig::micro(2);
//! cfg.batch_size = 1;
//! cfg.mosaic_prob = 0.0;
//! train(&model, &dataset, &split.train, &cfg, 0, |_, _| {}, |_| {});
//! let detector = Detector::new(model);
//! let (image, _) = dataset.render(split.val[0]);
//! let _detections = detector.detect(&image);
//! ```

pub mod anchors;
pub mod assign;
pub mod backbone;
pub mod config;
pub mod head;
pub mod loss;
pub mod model;
pub mod neck;
pub mod nms;
pub mod predict;
pub mod runtime;
pub mod summary;
pub mod track;
pub mod train;
pub mod transfer;
pub mod tta;

pub use anchors::{anchors_to_scales, kmeans_anchors, mean_best_iou};
pub use assign::{build_targets, ScaleTargets};
pub use config::{darknet_anchors, synthetic_anchors, YoloConfig, ANCHORS_PER_SCALE, STRIDES};
pub use loss::{yolo_loss, BoxLoss, LossParts, LossWeights};
pub use model::{CompiledModel, Yolov4};
pub use nms::{decode_detections, nms, Detection, NmsKind};
pub use predict::{DetectError, Detector};
pub use summary::{render_summary, summarize, SummaryRow};
pub use track::{SortTracker, Track, TrackConfig, TrackError};
pub use runtime::{Fault, FaultPlan, ResumePolicy, RunReport, RuntimeConfig, RuntimeError};
pub use train::{train, RunState, TrainConfig, TrainRecord, Trainer};
pub use tta::{merge_tta, TtaCondition, TtaConfig, TtaError, TtaView};
pub use transfer::{pretrain_backbone, transfer_backbone, PretextClassifier, PretrainOutcome, PRETEXT_CLASSES};
