//! CSPDarknet53 — YOLOv4's backbone (§III-B of the paper).
//!
//! Five downsampling stages, each a Cross-Stage-Partial block: the stage
//! input is split by two 1×1 convs, one path runs the residual stack, the
//! other bypasses it, and the halves are re-fused by concat + 1×1. All
//! backbone convs use Mish, as in the paper.

use platter_tensor::nn::{Activation, ConvBlock};
use platter_tensor::ops::Conv2dSpec;
use platter_tensor::{Mode, Param, Trace, Var};
use rand::Rng;

use crate::config::YoloConfig;

/// One residual unit: 1×1 reduce → 3×3 expand, with identity skip.
pub struct ResidualBlock {
    conv1: ConvBlock,
    conv2: ConvBlock,
}

impl ResidualBlock {
    fn new<R: Rng + ?Sized>(name: &str, ch: usize, rng: &mut R) -> ResidualBlock {
        ResidualBlock {
            conv1: ConvBlock::new(&format!("{name}.conv1"), ch, ch, 1, Conv2dSpec::same(1), Activation::Mish, rng),
            conv2: ConvBlock::new(&format!("{name}.conv2"), ch, ch, 3, Conv2dSpec::same(3), Activation::Mish, rng),
        }
    }

    fn trace<B: Trace>(&self, b: &mut B, x: B::Value, mode: Mode) -> B::Value {
        let y = self.conv1.trace(b, x, mode);
        let y = self.conv2.trace(b, y, mode);
        b.add(x, y)
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.conv1.parameters();
        p.extend(self.conv2.parameters());
        p
    }
}

/// One CSP stage: stride-2 downsample followed by the split/merge block.
pub struct CspStage {
    down: ConvBlock,
    split_bypass: ConvBlock,
    split_main: ConvBlock,
    blocks: Vec<ResidualBlock>,
    post: ConvBlock,
    merge: ConvBlock,
}

impl CspStage {
    fn new<R: Rng + ?Sized>(name: &str, cin: usize, cout: usize, repeats: usize, rng: &mut R) -> CspStage {
        let half = (cout / 2).max(2);
        CspStage {
            down: ConvBlock::new(&format!("{name}.down"), cin, cout, 3, Conv2dSpec::down(3), Activation::Mish, rng),
            split_bypass: ConvBlock::new(&format!("{name}.split0"), cout, half, 1, Conv2dSpec::same(1), Activation::Mish, rng),
            split_main: ConvBlock::new(&format!("{name}.split1"), cout, half, 1, Conv2dSpec::same(1), Activation::Mish, rng),
            blocks: (0..repeats).map(|i| ResidualBlock::new(&format!("{name}.res{i}"), half, rng)).collect(),
            post: ConvBlock::new(&format!("{name}.post"), half, half, 1, Conv2dSpec::same(1), Activation::Mish, rng),
            merge: ConvBlock::new(&format!("{name}.merge"), half * 2, cout, 1, Conv2dSpec::same(1), Activation::Mish, rng),
        }
    }

    fn trace<B: Trace>(&self, b: &mut B, x: B::Value, mode: Mode) -> B::Value {
        let x = self.down.trace(b, x, mode);
        let bypass = self.split_bypass.trace(b, x, mode);
        let mut main = self.split_main.trace(b, x, mode);
        for block in &self.blocks {
            main = block.trace(b, main, mode);
        }
        let main = self.post.trace(b, main, mode);
        let cat = b.concat_channels(&[main, bypass]);
        self.merge.trace(b, cat, mode)
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.down.parameters();
        p.extend(self.split_bypass.parameters());
        p.extend(self.split_main.parameters());
        for b in &self.blocks {
            p.extend(b.parameters());
        }
        p.extend(self.post.parameters());
        p.extend(self.merge.parameters());
        p
    }
}

/// Multi-scale backbone features: strides 8, 16 and 32. Generic over the
/// handle type so the same struct carries eager [`Var`]s and planned
/// `ValueId`s.
pub struct BackboneFeatures<H = Var> {
    /// Stride-8 feature map (the paper's route to the small-object head).
    pub c3: H,
    /// Stride-16 feature map.
    pub c4: H,
    /// Stride-32 feature map.
    pub c5: H,
}

/// The full CSPDarknet53.
pub struct CspDarknet {
    stem: ConvBlock,
    stages: Vec<CspStage>,
}

impl CspDarknet {
    /// Build the backbone for `cfg` under the serialization prefix `name`
    /// (conventionally `backbone`).
    pub fn new<R: Rng + ?Sized>(name: &str, cfg: &YoloConfig, rng: &mut R) -> CspDarknet {
        let stem = ConvBlock::new(
            &format!("{name}.stem"),
            3,
            cfg.channels(0),
            3,
            Conv2dSpec::same(3),
            Activation::Mish,
            rng,
        );
        let stages = (0..5)
            .map(|i| {
                CspStage::new(
                    &format!("{name}.stage{}", i + 1),
                    cfg.channels(i),
                    cfg.channels(i + 1),
                    cfg.repeats(i),
                    rng,
                )
            })
            .collect();
        CspDarknet { stem, stages }
    }

    /// Trace the backbone onto a backend, producing the three feature
    /// levels (eager forward on [`platter_tensor::Graph`], plan recording on
    /// [`platter_tensor::Planner`]).
    pub fn trace<B: Trace>(&self, b: &mut B, x: B::Value, mode: Mode) -> BackboneFeatures<B::Value> {
        let mut h = self.stem.trace(b, x, mode);
        let mut taps = Vec::with_capacity(3);
        for (i, stage) in self.stages.iter().enumerate() {
            h = stage.trace(b, h, mode);
            if i >= 2 {
                taps.push(h); // stages 3, 4, 5 → strides 8, 16, 32
            }
        }
        BackboneFeatures { c3: taps[0], c4: taps[1], c5: taps[2] }
    }

    /// All backbone parameters (what transfer learning loads and freezing
    /// freezes).
    pub fn parameters(&self) -> Vec<Param> {
        let mut p = self.stem.parameters();
        for s in &self.stages {
            p.extend(s.parameters());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platter_tensor::{Graph, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn feature_shapes_follow_strides() {
        let cfg = YoloConfig::micro(10);
        let mut rng = StdRng::seed_from_u64(1);
        let bb = CspDarknet::new("backbone", &cfg, &mut rng);
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::zeros(&[2, 3, 64, 64]));
        let f = bb.trace(&mut g, x, Mode::Infer);
        assert_eq!(g.shape(f.c3), &[2, cfg.channels(3), 8, 8]);
        assert_eq!(g.shape(f.c4), &[2, cfg.channels(4), 4, 4]);
        assert_eq!(g.shape(f.c5), &[2, cfg.channels(5), 2, 2]);
    }

    #[test]
    fn full_scale_shapes_one_forward() {
        // The paper-scale profile must assemble and run (one inference pass
        // at a reduced input keeps this test fast while exercising the 1.0
        // width/depth construction path).
        let mut cfg = YoloConfig::full(10);
        cfg.input_size = 64;
        let mut rng = StdRng::seed_from_u64(2);
        let bb = CspDarknet::new("backbone", &cfg, &mut rng);
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::zeros(&[1, 3, 64, 64]));
        let f = bb.trace(&mut g, x, Mode::Infer);
        assert_eq!(g.shape(f.c5), &[1, 1024, 2, 2]);
        // Paper-scale parameter count is in the tens of millions.
        let n: usize = bb.parameters().iter().map(|p| p.numel()).sum();
        assert!(n > 10_000_000, "param count {n}");
    }

    #[test]
    fn parameters_have_unique_names() {
        let cfg = YoloConfig::micro(10);
        let mut rng = StdRng::seed_from_u64(3);
        let bb = CspDarknet::new("backbone", &cfg, &mut rng);
        let mut names: Vec<String> = bb.parameters().iter().map(|p| p.name()).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate parameter names");
        assert!(names.iter().all(|n| n.starts_with("backbone.")));
    }

    #[test]
    fn gradients_reach_the_stem() {
        let cfg = YoloConfig::micro(4);
        let mut rng = StdRng::seed_from_u64(4);
        let bb = CspDarknet::new("backbone", &cfg, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(&[1, 3, 64, 64], &mut rng));
        let f = bb.trace(&mut g, x, Mode::Train);
        let sq = g.square(f.c5);
        let loss = g.mean_all(sq);
        g.backward(loss);
        let stem_w = &bb.parameters()[0];
        assert!(stem_w.grad().as_slice().iter().any(|&v| v != 0.0), "stem got no gradient");
    }
}
