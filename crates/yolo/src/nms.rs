//! Prediction decoding and non-maximum suppression (greedy and DIoU-NMS,
//! the latter being YOLOv4's "bag of specials" choice).

use platter_imaging::NormBox;
use platter_tensor::Tensor;

use crate::config::{YoloConfig, ANCHORS_PER_SCALE};

/// One decoded detection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Detection {
    /// Predicted class id.
    pub class: usize,
    /// Confidence: objectness × best class probability.
    pub score: f32,
    /// Normalised box.
    pub bbox: NormBox,
}

/// Suppression criterion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NmsKind {
    /// Classic greedy IoU NMS.
    Greedy,
    /// DIoU-NMS: IoU penalised by normalised centre distance.
    Diou,
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A detection worth keeping: finite score, finite box, positive area.
///
/// Degenerate candidates (NaN/inf scores from corrupted activations,
/// zero-area or non-finite boxes) would otherwise poison the NMS ordering
/// and IoU math, so both [`decode_detections`] and [`nms`] filter on this.
#[inline]
fn is_sane(score: f32, bbox: &NormBox) -> bool {
    score.is_finite()
        && bbox.cx.is_finite()
        && bbox.cy.is_finite()
        && bbox.w.is_finite()
        && bbox.h.is_finite()
        && bbox.w > 0.0
        && bbox.h > 0.0
}

/// Decode raw head tensors into per-image candidate detections (before NMS).
///
/// `heads` are the three raw `[n, a·(5+c), g, g]` tensors in stride order
/// (a slice so both owned `[Tensor; 3]` arrays and the compiled executor's
/// borrowed outputs decode without copies).
pub fn decode_detections(heads: &[Tensor], cfg: &YoloConfig, conf_thresh: f32) -> Vec<Vec<Detection>> {
    assert_eq!(heads.len(), 3, "expected three head tensors, got {}", heads.len());
    let n = heads[0].shape()[0];
    let a = ANCHORS_PER_SCALE;
    let c = cfg.num_classes;
    let mut out = vec![Vec::new(); n];
    for (s, head) in heads.iter().enumerate() {
        let gsz = cfg.grid_size(s);
        debug_assert_eq!(head.shape(), &[n, a * (5 + c), gsz, gsz]);
        let data = head.as_slice();
        let plane = gsz * gsz;
        for (b, dets) in out.iter_mut().enumerate() {
            for anc in 0..a {
                let base = (b * a * (5 + c) + anc * (5 + c)) * plane;
                for row in 0..gsz {
                    for col in 0..gsz {
                        let at = |k: usize| data[base + k * plane + row * gsz + col];
                        let obj = sigmoid(at(4));
                        if obj < conf_thresh {
                            continue; // cheap early-out
                        }
                        let (mut best_c, mut best_p) = (0usize, 0.0f32);
                        for k in 0..c {
                            let p = sigmoid(at(5 + k));
                            if p > best_p {
                                best_p = p;
                                best_c = k;
                            }
                        }
                        let score = obj * best_p;
                        // `<` is false for NaN, so an explicit finite check
                        // is needed to keep corrupt activations out.
                        if !score.is_finite() || score < conf_thresh {
                            continue;
                        }
                        let bx = (sigmoid(at(0)) + col as f32) / gsz as f32;
                        let by = (sigmoid(at(1)) + row as f32) / gsz as f32;
                        let bw = cfg.anchors[s][anc].0 * at(2).clamp(-9.0, 9.0).exp();
                        let bh = cfg.anchors[s][anc].1 * at(3).clamp(-9.0, 9.0).exp();
                        let bbox = NormBox::new(bx, by, bw, bh);
                        if !is_sane(score, &bbox) {
                            continue;
                        }
                        dets.push(Detection { class: best_c, score, bbox });
                    }
                }
            }
        }
    }
    out
}

fn suppression_score(a: &NormBox, b: &NormBox, kind: NmsKind) -> f32 {
    let iou = a.iou(b);
    match kind {
        NmsKind::Greedy => iou,
        NmsKind::Diou => {
            let (ax0, ay0, ax1, ay1) = a.xyxy();
            let (bx0, by0, bx1, by1) = b.xyxy();
            let cw = ax1.max(bx1) - ax0.min(bx0);
            let ch = ay1.max(by1) - ay0.min(by0);
            let c2 = cw * cw + ch * ch + 1e-9;
            let d2 = (a.cx - b.cx).powi(2) + (a.cy - b.cy).powi(2);
            iou - d2 / c2
        }
    }
}

/// Class-aware NMS: within each class, keep the highest-scored boxes and
/// drop later ones whose suppression score against a kept box exceeds
/// `iou_thresh`. The result stays sorted by descending score.
///
/// Degenerate detections (non-finite scores or boxes, zero-area boxes) are
/// dropped up front and the sort is total, so adversarial inputs cannot
/// panic the suppression loop or scramble its ordering. Equal scores
/// tie-break on the original (post-filter) index — an explicit guarantee,
/// not an accident of the sort algorithm — so repeated runs over the same
/// candidate list suppress identically.
pub fn nms(detections: Vec<Detection>, iou_thresh: f32, kind: NmsKind) -> Vec<Detection> {
    let mut detections: Vec<(usize, Detection)> = detections
        .into_iter()
        .filter(|d| is_sane(d.score, &d.bbox))
        .enumerate()
        .collect();
    detections.sort_by(|(ia, a), (ib, b)| b.score.total_cmp(&a.score).then(ia.cmp(ib)));
    let mut keep: Vec<Detection> = Vec::with_capacity(detections.len());
    for (_, det) in detections {
        let suppressed = keep
            .iter()
            .any(|k| k.class == det.class && suppression_score(&k.bbox, &det.bbox, kind) > iou_thresh);
        if !suppressed {
            keep.push(det);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: usize, score: f32, cx: f32, cy: f32, w: f32, h: f32) -> Detection {
        Detection { class, score, bbox: NormBox::new(cx, cy, w, h) }
    }

    #[test]
    fn nms_suppresses_duplicates_keeps_best() {
        let dets = vec![
            det(0, 0.9, 0.5, 0.5, 0.3, 0.3),
            det(0, 0.8, 0.51, 0.5, 0.3, 0.3),
            det(0, 0.7, 0.9, 0.9, 0.1, 0.1),
        ];
        let kept = nms(dets, 0.5, NmsKind::Greedy);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].score, 0.9);
        assert_eq!(kept[1].score, 0.7);
    }

    #[test]
    fn nms_is_class_aware() {
        let dets = vec![det(0, 0.9, 0.5, 0.5, 0.3, 0.3), det(1, 0.8, 0.5, 0.5, 0.3, 0.3)];
        let kept = nms(dets, 0.5, NmsKind::Greedy);
        assert_eq!(kept.len(), 2, "same box, different classes: both survive");
    }

    #[test]
    fn nms_output_is_sorted_and_disjoint_per_class() {
        let mut dets = Vec::new();
        for i in 0..20 {
            let f = i as f32;
            dets.push(det(i % 3, 0.3 + 0.03 * f, 0.2 + 0.03 * f, 0.5, 0.25, 0.25));
        }
        let kept = nms(dets, 0.45, NmsKind::Greedy);
        for w in kept.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for i in 0..kept.len() {
            for j in (i + 1)..kept.len() {
                if kept[i].class == kept[j].class {
                    assert!(kept[i].bbox.iou(&kept[j].bbox) <= 0.45 + 1e-5);
                }
            }
        }
    }

    #[test]
    fn diou_nms_is_stricter_for_distant_centres() {
        // Same IoU, but displaced centres lower the DIoU criterion, so a
        // borderline pair survives DIoU-NMS while greedy suppresses it.
        let a = det(0, 0.9, 0.45, 0.5, 0.4, 0.4);
        let b = det(0, 0.8, 0.62, 0.5, 0.4, 0.4);
        let iou = a.bbox.iou(&b.bbox);
        let thresh = iou - 0.02; // greedy: b suppressed
        let greedy = nms(vec![a, b], thresh, NmsKind::Greedy);
        let diou = nms(vec![a, b], thresh, NmsKind::Diou);
        assert_eq!(greedy.len(), 1);
        assert_eq!(diou.len(), 2, "distance penalty saves the displaced box");
    }

    #[test]
    fn decode_finds_a_planted_detection() {
        let cfg = YoloConfig::micro(10);
        let gsz = cfg.grid_size(2); // stride 32 grid (2×2)
        let mut h2 = Tensor::full(&[1, 45, gsz, gsz], -12.0);
        {
            // Plant one confident detection: anchor 1, cell (1, 0).
            let d = h2.as_mut_slice();
            let plane = gsz * gsz;
            let idx = |anc: usize, k: usize, row: usize, col: usize| (anc * 15 + k) * plane + row * gsz + col;
            d[idx(1, 0, 1, 0)] = 0.0; // σ(0)=0.5 → centre of the cell
            d[idx(1, 1, 1, 0)] = 0.0;
            d[idx(1, 2, 1, 0)] = 0.0; // w = anchor w
            d[idx(1, 3, 1, 0)] = 0.0;
            d[idx(1, 4, 1, 0)] = 8.0; // objectness
            d[idx(1, 5 + 7, 1, 0)] = 8.0; // class 7
        }
        let h0 = Tensor::full(&[1, 45, 8, 8], -12.0);
        let h1 = Tensor::full(&[1, 45, 4, 4], -12.0);
        let dets = decode_detections(&[h0, h1, h2], &cfg, 0.25);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].len(), 1);
        let d = dets[0][0];
        assert_eq!(d.class, 7);
        assert!(d.score > 0.9);
        // Cell (row 1, col 0) of a 2-grid → centre ≈ (0.25, 0.75).
        assert!((d.bbox.cx - 0.25).abs() < 0.01, "{:?}", d.bbox);
        assert!((d.bbox.cy - 0.75).abs() < 0.01);
        assert!((d.bbox.w - cfg.anchors[2][1].0).abs() < 1e-4);
    }

    #[test]
    fn nms_drops_nan_scores() {
        let dets = vec![det(0, f32::NAN, 0.5, 0.5, 0.3, 0.3), det(0, 0.8, 0.2, 0.2, 0.1, 0.1)];
        let kept = nms(dets, 0.5, NmsKind::Greedy);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.8);
    }

    #[test]
    fn nms_drops_infinite_scores() {
        let dets = vec![
            det(0, f32::INFINITY, 0.5, 0.5, 0.3, 0.3),
            det(0, f32::NEG_INFINITY, 0.2, 0.2, 0.1, 0.1),
            det(0, 0.6, 0.8, 0.8, 0.1, 0.1),
        ];
        let kept = nms(dets, 0.5, NmsKind::Greedy);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.6);
    }

    #[test]
    fn nms_drops_zero_area_boxes() {
        let dets = vec![
            det(0, 0.9, 0.5, 0.5, 0.0, 0.3),
            det(0, 0.85, 0.5, 0.5, 0.3, 0.0),
            det(0, 0.6, 0.8, 0.8, 0.1, 0.1),
        ];
        let kept = nms(dets, 0.5, NmsKind::Greedy);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.6);
    }

    #[test]
    fn nms_drops_negative_size_boxes() {
        let dets = vec![det(0, 0.9, 0.5, 0.5, -0.3, 0.3), det(1, 0.7, 0.5, 0.5, 0.3, -0.3)];
        assert!(nms(dets, 0.5, NmsKind::Greedy).is_empty());
    }

    #[test]
    fn nms_drops_non_finite_boxes() {
        let dets = vec![
            det(0, 0.9, f32::NAN, 0.5, 0.3, 0.3),
            det(0, 0.8, 0.5, f32::INFINITY, 0.3, 0.3),
            det(0, 0.7, 0.5, 0.5, f32::NAN, 0.3),
            det(0, 0.6, 0.5, 0.5, 0.3, f32::NAN),
        ];
        assert!(nms(dets, 0.5, NmsKind::Diou).is_empty());
    }

    #[test]
    fn nms_sort_is_total_under_nan_floods() {
        // A mix of NaN and real scores in every order: the sort must never
        // panic, NaNs must vanish, and the survivors stay ordered.
        let mut dets = Vec::new();
        for i in 0..30 {
            let score = if i % 3 == 0 { f32::NAN } else { 0.3 + 0.02 * i as f32 };
            dets.push(det(i % 2, score, 0.03 * i as f32, 0.5, 0.02, 0.02));
        }
        let kept = nms(dets, 0.5, NmsKind::Greedy);
        assert_eq!(kept.len(), 20);
        for w in kept.windows(2) {
            assert!(w[0].score >= w[1].score);
            assert!(w[0].score.is_finite() && w[1].score.is_finite());
        }
    }

    #[test]
    fn decode_skips_cells_with_nan_logits() {
        let cfg = YoloConfig::micro(10);
        let gsz = cfg.grid_size(2);
        let mut h2 = Tensor::full(&[1, 45, gsz, gsz], -12.0);
        {
            let d = h2.as_mut_slice();
            let plane = gsz * gsz;
            let idx = |anc: usize, k: usize, row: usize, col: usize| (anc * 15 + k) * plane + row * gsz + col;
            // Cell A: NaN objectness (NaN < thresh is false, so only the
            // finite-score guard keeps it out).
            d[idx(0, 4, 0, 0)] = f32::NAN;
            d[idx(0, 5, 0, 0)] = 8.0;
            // Cell B: confident but with a NaN box regressor.
            d[idx(1, 0, 1, 1)] = f32::NAN;
            d[idx(1, 4, 1, 1)] = 8.0;
            d[idx(1, 5, 1, 1)] = 8.0;
        }
        let h0 = Tensor::full(&[1, 45, 8, 8], -12.0);
        let h1 = Tensor::full(&[1, 45, 4, 4], -12.0);
        let dets = decode_detections(&[h0, h1, h2], &cfg, 0.25);
        assert!(dets[0].is_empty(), "corrupt cells must not decode: {:?}", dets[0]);
    }

    #[test]
    fn decode_respects_confidence_threshold() {
        let cfg = YoloConfig::micro(10);
        let h0 = Tensor::full(&[1, 45, 8, 8], 0.0); // σ(0)=0.5 ⇒ score 0.25
        let h1 = Tensor::full(&[1, 45, 4, 4], -12.0);
        let h2 = Tensor::full(&[1, 45, 2, 2], -12.0);
        let low = decode_detections(&[h0.clone(), h1.clone(), h2.clone()], &cfg, 0.3);
        assert!(low[0].is_empty());
        let high = decode_detections(&[h0, h1, h2], &cfg, 0.2);
        assert!(!high[0].is_empty());
    }
}
