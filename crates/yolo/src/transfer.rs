//! Transfer learning (the paper's central method).
//!
//! The paper initialises CSPDarknet53 from ImageNet-pretrained weights
//! (`yolov4.conv.137`) before fine-tuning on IndianFood10. We reproduce the
//! mechanism with a *pretext* task: the identical backbone is pretrained as
//! a classifier on a synthetic textured-shapes dataset (disjoint from the
//! food classes), and its weights are partially loaded into the detector —
//! the same subset-by-name flow darknet's partial weight files use.

use platter_imaging::raster::{fill_circle, fill_ring, fill_rounded_rect};
use platter_imaging::texture::{apply_noise_overlay, apply_pixel_noise, grains_ellipse, speckle_ellipse};
use platter_imaging::{Image, Rgb};
use platter_tensor::nn::Linear;
use platter_tensor::serialize::{load_params, save_params, LoadMode, LoadReport, WeightError};
use platter_tensor::{Adam, Graph, Mode, Param, Tensor, Var};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::backbone::CspDarknet;
use crate::config::YoloConfig;
use crate::model::Yolov4;

/// Number of pretext shape classes.
pub const PRETEXT_CLASSES: usize = 8;

/// Render one pretext sample: a textured shape of `class` on a noisy
/// background. The classes exercise the same low-level features (edges,
/// blobs, textures, gloss) that food photos do.
pub fn pretext_sample(class: usize, seed: u64, size: usize) -> Image {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
    let bg = Rgb::new(
        rng.random_range(0.1..0.9),
        rng.random_range(0.1..0.9),
        rng.random_range(0.1..0.9),
    );
    let mut img = Image::new(size, size, bg);
    apply_noise_overlay(&mut img, rng.random_range(0..u64::MAX / 2), size as f32 / 6.0, 0.2);
    let fg = Rgb::new(
        rng.random_range(0.0..1.0),
        rng.random_range(0.0..1.0),
        rng.random_range(0.0..1.0),
    );
    let s = size as f32;
    let cx = s * rng.random_range(0.35..0.65);
    let cy = s * rng.random_range(0.35..0.65);
    let r = s * rng.random_range(0.18..0.32);
    match class % PRETEXT_CLASSES {
        0 => fill_circle(&mut img, cx, cy, r, fg, 1.0),
        1 => fill_ring(&mut img, cx, cy, r * 0.5, r, fg, 1.0),
        2 => fill_rounded_rect(&mut img, cx, cy, r, r, r * 0.2, rng.random_range(0.0..1.5), fg, 1.0),
        3 => fill_rounded_rect(&mut img, cx, cy, r * 1.4, r * 0.45, r * 0.2, rng.random_range(0.0..3.0), fg, 1.0),
        4 => {
            // Two discs.
            fill_circle(&mut img, cx - r * 0.6, cy, r * 0.6, fg, 1.0);
            fill_circle(&mut img, cx + r * 0.6, cy, r * 0.6, fg, 1.0);
        }
        5 => speckle_ellipse(&mut img, &mut rng, cx, cy, r, r, 60, r * 0.08, fg, fg.scaled(0.6)),
        6 => grains_ellipse(&mut img, &mut rng, cx, cy, r, r, 50, r * 0.15, fg, fg.scaled(1.3).clamped()),
        _ => {
            // Concentric rings.
            for k in 1..=3 {
                fill_ring(&mut img, cx, cy, r * (k as f32 / 3.0) - r * 0.12, r * (k as f32 / 3.0), fg.scaled(1.0 / k as f32).clamped(), 1.0);
            }
        }
    }
    apply_pixel_noise(&mut img, rng.random_range(0..u64::MAX / 2), 0.02);
    img
}

/// The pretext classifier: the detector's backbone + GAP + linear head.
pub struct PretextClassifier {
    /// Same construction (and parameter names) as the detector's backbone.
    pub backbone: CspDarknet,
    head: Linear,
}

impl PretextClassifier {
    /// Build for the same `cfg` the detector will use — shapes must match
    /// for the weights to transfer.
    pub fn new(cfg: &YoloConfig, seed: u64) -> PretextClassifier {
        let mut rng = StdRng::seed_from_u64(seed);
        PretextClassifier {
            backbone: CspDarknet::new("backbone", cfg, &mut rng),
            head: Linear::new("pretext_head", cfg.channels(5), PRETEXT_CLASSES, &mut rng),
        }
    }

    /// Forward to class logits `[n, PRETEXT_CLASSES]`. Eager-only: global
    /// average pooling is a training-path op the inference IR has no use
    /// for, so this head is not traced onto the planner.
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool) -> Var {
        let f = self.backbone.trace(g, x, Mode::from_training(training));
        let pooled = g.global_avg_pool(f.c5);
        self.head.trace(g, pooled)
    }

    /// All parameters.
    pub fn parameters(&self) -> Vec<Param> {
        let mut p = self.backbone.parameters();
        p.extend(self.head.parameters());
        p
    }

    /// Classify a batch, returning predicted class per row.
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        let mut g = Graph::inference();
        let xv = g.leaf(x.clone());
        let logits = self.forward(&mut g, xv, false);
        let lv = g.value(logits);
        let k = PRETEXT_CLASSES;
        (0..lv.shape()[0])
            .map(|i| {
                let row = &lv.as_slice()[i * k..(i + 1) * k];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Result of a pretext pretraining run.
pub struct PretrainOutcome {
    /// The trained classifier (holding the backbone weights to transfer).
    pub classifier: PretextClassifier,
    /// Final training accuracy on fresh samples.
    pub accuracy: f32,
}

/// Pretrain a backbone on the pretext task.
pub fn pretrain_backbone(cfg: &YoloConfig, iterations: usize, batch_size: usize, seed: u64) -> PretrainOutcome {
    let classifier = PretextClassifier::new(cfg, seed);
    let mut opt = Adam::new(classifier.parameters(), 1e-4);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
    let size = cfg.input_size;

    let make_batch = |rng: &mut StdRng| {
        let mut data = Vec::with_capacity(batch_size * 3 * size * size);
        let mut labels = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            let class = rng.random_range(0..PRETEXT_CLASSES);
            let img = pretext_sample(class, rng.random_range(0..u64::MAX / 2), size);
            data.extend_from_slice(&img.to_chw());
            labels.push(class);
        }
        (Tensor::from_vec(data, &[batch_size, 3, size, size]), labels)
    };

    for _ in 0..iterations {
        let (x, labels) = make_batch(&mut rng);
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let logits = classifier.forward(&mut g, xv, true);
        let loss = g.softmax_cross_entropy(logits, &labels);
        g.backward(loss);
        opt.step(2e-3);
        opt.zero_grad();
    }

    // Accuracy on a held-out batch.
    let (x, labels) = make_batch(&mut rng);
    let preds = classifier.predict(&x);
    let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
    PretrainOutcome { classifier, accuracy: correct as f32 / labels.len() as f32 }
}

/// Copy the classifier's backbone weights into a detector (partial load by
/// name — the `yolov4.conv.137` flow).
pub fn transfer_backbone(from: &PretextClassifier, to: &Yolov4) -> Result<LoadReport, WeightError> {
    let buf = save_params(&from.backbone.parameters());
    load_params(&to.backbone_parameters(), &buf, LoadMode::Partial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretext_samples_are_deterministic_and_distinct() {
        let a = pretext_sample(0, 5, 48);
        let b = pretext_sample(0, 5, 48);
        assert_eq!(a, b);
        let c = pretext_sample(3, 5, 48);
        assert_ne!(a, c, "different classes must render differently");
    }

    #[test]
    fn classifier_shapes() {
        let cfg = YoloConfig::micro(10);
        let clf = PretextClassifier::new(&cfg, 1);
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::zeros(&[2, 3, 64, 64]));
        let logits = clf.forward(&mut g, x, false);
        assert_eq!(g.shape(logits), &[2, PRETEXT_CLASSES]);
    }

    #[test]
    fn transfer_moves_every_backbone_weight() {
        let cfg = YoloConfig::micro(10);
        let clf = PretextClassifier::new(&cfg, 3);
        let det = Yolov4::new(cfg, 4);
        let stem_before = det.backbone_parameters()[0].value();
        let report = transfer_backbone(&clf, &det).unwrap();
        assert!(report.loaded.len() == det.backbone_parameters().len(), "all backbone params load");
        assert!(report.shape_mismatch.is_empty());
        let stem_after = det.backbone_parameters()[0].value();
        assert_ne!(stem_before.as_slice(), stem_after.as_slice());
        // And now equals the classifier's stem.
        assert_eq!(stem_after.as_slice(), clf.backbone.parameters()[0].value().as_slice());
    }

    #[test]
    fn transfer_rejects_mismatched_widths() {
        let clf = PretextClassifier::new(&YoloConfig::micro(10), 1);
        let det = Yolov4::new(YoloConfig { width: 0.5, ..YoloConfig::micro(10) }, 2);
        let report = transfer_backbone(&clf, &det).unwrap();
        assert!(!report.shape_mismatch.is_empty(), "width change must be flagged");
    }

    #[test]
    #[ignore = "slow: a real (short) pretraining run; exercised by the ablation binary"]
    fn pretraining_beats_chance() {
        let cfg = YoloConfig::micro(10);
        let out = pretrain_backbone(&cfg, 60, 8, 5);
        assert!(out.accuracy > 0.3, "pretext accuracy {} ≤ chance", out.accuracy);
    }
}
