//! Model introspection: a darknet-style layer/parameter summary for any
//! parameter collection, grouped by module path.

use platter_tensor::Param;
use std::fmt::Write as _;

/// One row of the summary: a module prefix and its parameter total.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SummaryRow {
    /// Module path (first two segments of the parameter names).
    pub module: String,
    /// Number of tensors under the prefix.
    pub tensors: usize,
    /// Total scalar parameters under the prefix.
    pub params: usize,
}

/// Group parameters by their first two name segments
/// (`backbone.stage3`, `neck.spp`, `head.s8`, …), preserving first-seen
/// order so the table reads top-down through the network.
pub fn summarize(params: &[Param]) -> Vec<SummaryRow> {
    let mut rows: Vec<SummaryRow> = Vec::new();
    for p in params {
        let name = p.name();
        let module: String = name.split('.').take(2).collect::<Vec<_>>().join(".");
        match rows.iter_mut().find(|r| r.module == module) {
            Some(row) => {
                row.tensors += 1;
                row.params += p.numel();
            }
            None => rows.push(SummaryRow { module, tensors: 1, params: p.numel() }),
        }
    }
    rows
}

/// Render the summary as an aligned text table with a grand total.
pub fn render_summary(params: &[Param]) -> String {
    let rows = summarize(params);
    let w = rows.iter().map(|r| r.module.len()).max().unwrap_or(6).max(6);
    let mut out = String::new();
    let _ = writeln!(out, "{:w$}  {:>8}  {:>12}", "module", "tensors", "parameters");
    let mut total_t = 0usize;
    let mut total_p = 0usize;
    for r in &rows {
        let _ = writeln!(out, "{:w$}  {:>8}  {:>12}", r.module, r.tensors, r.params);
        total_t += r.tensors;
        total_p += r.params;
    }
    let _ = writeln!(out, "{:w$}  {:>8}  {:>12}", "TOTAL", total_t, total_p);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::YoloConfig;
    use crate::model::Yolov4;

    #[test]
    fn summary_covers_all_parameters() {
        let model = Yolov4::new(YoloConfig::micro(10), 1);
        let params = model.parameters();
        let rows = summarize(&params);
        let total: usize = rows.iter().map(|r| r.params).sum();
        assert_eq!(total, model.num_parameters());
        let tensors: usize = rows.iter().map(|r| r.tensors).sum();
        assert_eq!(tensors, params.len());
    }

    #[test]
    fn summary_orders_backbone_first() {
        let model = Yolov4::new(YoloConfig::micro(10), 2);
        let rows = summarize(&model.parameters());
        assert!(rows[0].module.starts_with("backbone."));
        assert!(rows.iter().any(|r| r.module.starts_with("neck.")));
        assert!(rows.iter().any(|r| r.module.starts_with("head.")));
    }

    #[test]
    fn rendered_table_has_total_line() {
        let model = Yolov4::new(YoloConfig::micro(3), 3);
        let table = render_summary(&model.parameters());
        assert!(table.contains("TOTAL"));
        assert!(table.contains(&model.num_parameters().to_string()));
    }
}
