//! Ground-truth → grid/anchor target assignment.
//!
//! Every annotation is routed to the detection scale and anchor whose shape
//! best matches it (by width/height IoU, darknet style); anchors above a
//! secondary IoU threshold are also positive. Negatives overlapping a GT's
//! cell with a reasonably matching anchor are *ignored* (excluded from the
//! no-object loss), mirroring darknet's `ignore_thresh`.

use platter_dataset::Annotation;
use platter_tensor::Tensor;

use crate::anchors::wh_iou;
use crate::config::{YoloConfig, ANCHORS_PER_SCALE};

/// Secondary positive threshold: anchors this close to a GT shape are also
/// trained as positives (multi-anchor assignment).
pub const MULTI_ANCHOR_IOU: f32 = 0.35;
/// Anchors this close to a GT that were not selected are excluded from the
/// no-object term.
pub const IGNORE_IOU: f32 = 0.5;

/// Dense targets for one detection scale.
///
/// All tensors are `[n, a, k, g, g]` with `k` as annotated.
pub struct ScaleTargets {
    /// Positive mask (k = 1).
    pub obj: Tensor,
    /// Negative mask (k = 1): 1 where the no-object loss applies.
    pub noobj: Tensor,
    /// Ground-truth boxes, normalised cx/cy/w/h (k = 4); zero off-mask.
    pub tbox: Tensor,
    /// One-hot class targets (k = num_classes); zero off-mask.
    pub tcls: Tensor,
    /// Number of positive cells in this scale.
    pub num_pos: usize,
}

/// Build per-scale targets for a batch of annotations.
pub fn build_targets(cfg: &YoloConfig, batch: &[Vec<Annotation>]) -> [ScaleTargets; 3] {
    let n = batch.len();
    let a = ANCHORS_PER_SCALE;
    let c = cfg.num_classes;

    // Allocate dense buffers per scale.
    let mut obj: Vec<Vec<f32>> = Vec::with_capacity(3);
    let mut noobj: Vec<Vec<f32>> = Vec::with_capacity(3);
    let mut tbox: Vec<Vec<f32>> = Vec::with_capacity(3);
    let mut tcls: Vec<Vec<f32>> = Vec::with_capacity(3);
    let mut num_pos = [0usize; 3];
    for s in 0..3 {
        let g = cfg.grid_size(s);
        obj.push(vec![0.0; n * a * g * g]);
        noobj.push(vec![1.0; n * a * g * g]);
        tbox.push(vec![0.0; n * a * 4 * g * g]);
        tcls.push(vec![0.0; n * a * c * g * g]);
    }

    // Flat index helpers for [n, a, k, g, g].
    let idx = |s: usize, b: usize, anc: usize, k: usize, kdim: usize, row: usize, col: usize| {
        let g = cfg.grid_size(s);
        (((b * a + anc) * kdim + k) * g + row) * g + col
    };

    for (b, annotations) in batch.iter().enumerate() {
        for ann in annotations {
            debug_assert!(ann.class < c, "class {} out of range", ann.class);
            let gt = (ann.bbox.w, ann.bbox.h);
            // Rank all 9 anchors by shape match.
            let mut best: (usize, usize, f32) = (0, 0, -1.0);
            let mut positives: Vec<(usize, usize)> = Vec::new();
            for s in 0..3 {
                for anc in 0..a {
                    let iou = wh_iou(gt, cfg.anchors[s][anc]);
                    if iou > best.2 {
                        best = (s, anc, iou);
                    }
                    if iou > MULTI_ANCHOR_IOU {
                        positives.push((s, anc));
                    }
                }
            }
            if !positives.contains(&(best.0, best.1)) {
                positives.push((best.0, best.1));
            }

            for (s, anc) in positives {
                let g = cfg.grid_size(s);
                let col = ((ann.bbox.cx * g as f32) as usize).min(g - 1);
                let row = ((ann.bbox.cy * g as f32) as usize).min(g - 1);
                let o = idx(s, b, anc, 0, 1, row, col);
                if obj[s][o] == 1.0 {
                    continue; // cell/anchor already claimed by another GT
                }
                obj[s][o] = 1.0;
                noobj[s][o] = 0.0;
                num_pos[s] += 1;
                for (k, v) in [ann.bbox.cx, ann.bbox.cy, ann.bbox.w, ann.bbox.h].into_iter().enumerate() {
                    tbox[s][idx(s, b, anc, k, 4, row, col)] = v;
                }
                tcls[s][idx(s, b, anc, ann.class, c, row, col)] = 1.0;
            }

            // Ignore near-matching anchors at the GT's cell on every scale.
            for s in 0..3 {
                let g = cfg.grid_size(s);
                let col = ((ann.bbox.cx * g as f32) as usize).min(g - 1);
                let row = ((ann.bbox.cy * g as f32) as usize).min(g - 1);
                for anc in 0..a {
                    if wh_iou(gt, cfg.anchors[s][anc]) > IGNORE_IOU {
                        let o = idx(s, b, anc, 0, 1, row, col);
                        if obj[s][o] == 0.0 {
                            noobj[s][o] = 0.0;
                        }
                    }
                }
            }
        }
    }

    let mut out = Vec::with_capacity(3);
    for s in 0..3 {
        let g = cfg.grid_size(s);
        out.push(ScaleTargets {
            obj: Tensor::from_vec(std::mem::take(&mut obj[s]), &[n, a, 1, g, g]),
            noobj: Tensor::from_vec(std::mem::take(&mut noobj[s]), &[n, a, 1, g, g]),
            tbox: Tensor::from_vec(std::mem::take(&mut tbox[s]), &[n, a, 4, g, g]),
            tcls: Tensor::from_vec(std::mem::take(&mut tcls[s]), &[n, a, c, g, g]),
            num_pos: num_pos[s],
        });
    }
    out.try_into().map_err(|_| ()).expect("three scales")
}

#[cfg(test)]
mod tests {
    use super::*;
    use platter_imaging::NormBox;

    fn cfg() -> YoloConfig {
        YoloConfig::micro(10)
    }

    #[test]
    fn single_box_gets_at_least_one_positive() {
        let ann = vec![vec![Annotation { class: 2, bbox: NormBox::new(0.5, 0.5, 0.3, 0.3) }]];
        let targets = build_targets(&cfg(), &ann);
        let total: usize = targets.iter().map(|t| t.num_pos).sum();
        assert!(total >= 1);
        // Positive cells carry the box and the one-hot class.
        for t in &targets {
            if t.num_pos > 0 {
                assert!((t.obj.sum() - t.num_pos as f32).abs() < 1e-6);
                assert!(t.tbox.sum() > 0.0);
                assert!((t.tcls.sum() - t.num_pos as f32).abs() < 1e-6, "one-hot rows");
            }
        }
    }

    #[test]
    fn box_size_routes_to_matching_scale() {
        // A small box must have its best positive on the stride-8 scale, a
        // huge one on stride-32 (anchors ascend across scales).
        let small = vec![vec![Annotation { class: 0, bbox: NormBox::new(0.5, 0.5, 0.15, 0.15) }]];
        let t = build_targets(&cfg(), &small);
        assert!(t[0].num_pos >= 1, "small box missing from stride 8");
        assert_eq!(t[2].num_pos, 0, "small box must not hit stride 32");

        let big = vec![vec![Annotation { class: 0, bbox: NormBox::new(0.5, 0.5, 0.8, 0.75) }]];
        let t = build_targets(&cfg(), &big);
        assert!(t[2].num_pos >= 1, "big box missing from stride 32");
        assert_eq!(t[0].num_pos, 0, "big box must not hit stride 8");
    }

    #[test]
    fn cell_indexing_follows_box_centre() {
        let ann = vec![vec![Annotation { class: 1, bbox: NormBox::new(0.9, 0.1, 0.3, 0.3) }]];
        let targets = build_targets(&cfg(), &ann);
        // Find the positive cell and check its location.
        for (s, t) in targets.iter().enumerate() {
            if t.num_pos == 0 {
                continue;
            }
            let g = cfg().grid_size(s);
            let data = t.obj.as_slice();
            let hit = data.iter().position(|&v| v == 1.0).unwrap();
            let col = hit % g;
            let row = (hit / g) % g;
            assert_eq!(col, ((0.9 * g as f32) as usize).min(g - 1));
            assert_eq!(row, ((0.1 * g as f32) as usize).min(g - 1));
        }
    }

    #[test]
    fn positive_cells_removed_from_noobj() {
        let ann = vec![vec![Annotation { class: 3, bbox: NormBox::new(0.5, 0.5, 0.4, 0.4) }]];
        let targets = build_targets(&cfg(), &ann);
        for t in &targets {
            let obj = t.obj.as_slice();
            let noobj = t.noobj.as_slice();
            for (o, n) in obj.iter().zip(noobj) {
                assert!(o + n <= 1.0 + 1e-6, "masks must not overlap");
            }
        }
    }

    #[test]
    fn two_images_assign_independently() {
        let ann = vec![
            vec![Annotation { class: 0, bbox: NormBox::new(0.3, 0.3, 0.3, 0.3) }],
            vec![Annotation { class: 5, bbox: NormBox::new(0.7, 0.7, 0.3, 0.3) }],
        ];
        let targets = build_targets(&cfg(), &ann);
        let total: usize = targets.iter().map(|t| t.num_pos).sum();
        assert!(total >= 2);
        // Class planes: class 0 only in image 0, class 5 only in image 1.
        for t in &targets {
            let g = t.tcls.numel() / (2 * 3 * 10);
            let per_img = 3 * 10 * g;
            let (img0, img1) = t.tcls.as_slice().split_at(per_img);
            let cls_plane = |data: &[f32], cls: usize| -> f32 {
                let mut sum = 0.0;
                for anc in 0..3 {
                    let start = (anc * 10 + cls) * g;
                    sum += data[start..start + g].iter().sum::<f32>();
                }
                sum
            };
            assert_eq!(cls_plane(img0, 5), 0.0);
            assert_eq!(cls_plane(img1, 0), 0.0);
        }
    }

    #[test]
    fn empty_annotations_are_all_negative() {
        let targets = build_targets(&cfg(), &[vec![], vec![]]);
        for t in &targets {
            assert_eq!(t.num_pos, 0);
            assert_eq!(t.obj.sum(), 0.0);
            assert_eq!(t.noobj.sum(), t.noobj.numel() as f32);
        }
    }
}
