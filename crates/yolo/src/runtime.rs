//! Fault-tolerant training runtime.
//!
//! A crash-safe layer over [`crate::train::Trainer`] providing the three
//! guarantees long unattended runs need:
//!
//! 1. **Resumable checkpoints.** At a configurable cadence the complete run
//!    state ([`RunState`]: parameter values, SGD momentum buffers, the
//!    learning-rate position, and the loader's epoch/cursor/shuffle/RNG
//!    state) is serialized into a versioned, CRC-protected container and
//!    written atomically (staging file + rename, with retry/backoff on
//!    transient I/O errors). A killed process restarted on the same
//!    checkpoint path continues on the *exact* trajectory — bit-for-bit —
//!    an uninterrupted run would have taken.
//! 2. **Divergence rollback.** Every candidate step passes a guard: a
//!    non-finite loss, a non-finite gradient norm, or a gradient-norm spike
//!    far above the recent average rejects the update, rolls the run back
//!    to the last good checkpoint, cuts the learning rate, and retries —
//!    a bounded number of times before aborting with a structured
//!    [`RuntimeError::Diverged`].
//! 3. **A deterministic fault-injection harness.** A [`FaultPlan`]
//!    schedules NaN gradients, NaN parameter corruption, transient
//!    checkpoint-write failures, torn (truncated) checkpoint files, and
//!    process-kill points at exact iterations, so every recovery path above
//!    is exercised by ordinary unit tests instead of waiting for production
//!    to exercise them for us.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use bytes::{Buf, BufMut, BytesMut};
use platter_dataset::{LoaderState, SyntheticDataset};
use platter_obs::{exp_bounds, MetricsRegistry};
use platter_tensor::crc::crc32;
use platter_tensor::serialize::{decode, save_params, Bytes, WeightError};
use platter_tensor::{fsio, Param, Tensor};

use crate::model::Yolov4;
use crate::train::{RunState, TrainConfig, TrainMetrics, TrainRecord, Trainer};

const MAGIC: &[u8; 4] = b"PLTR";
const VERSION: u32 = 1;

/// Errors surfaced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// Checkpoint I/O failed (after the configured retries).
    Io(io::Error),
    /// A checkpoint failed its checksum or structural validation.
    Corrupt(String),
    /// A structurally valid checkpoint doesn't match this run
    /// (different model, subset, or iteration budget).
    Incompatible(String),
    /// The divergence guard exhausted its retry budget.
    Diverged {
        /// Iteration (0-based) whose step kept failing.
        iteration: usize,
        /// Rollbacks consumed before giving up.
        rollbacks: u32,
        /// Loss of the final rejected step.
        last_loss: f32,
    },
    /// A scheduled [`Fault::Kill`] fired (fault-injection harness only).
    Killed {
        /// Iteration (0-based) at which the simulated crash happened.
        iteration: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            RuntimeError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            RuntimeError::Incompatible(m) => write!(f, "incompatible checkpoint: {m}"),
            RuntimeError::Diverged { iteration, rollbacks, last_loss } => write!(
                f,
                "training diverged at iteration {iteration} (loss {last_loss}) after {rollbacks} rollbacks"
            ),
            RuntimeError::Killed { iteration } => {
                write!(f, "simulated crash at iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<io::Error> for RuntimeError {
    fn from(e: io::Error) -> Self {
        RuntimeError::Io(e)
    }
}

/// What to do when the checkpoint on disk fails validation at startup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResumePolicy {
    /// Discard the corrupt checkpoint and start the run from scratch
    /// (the validate-or-retrain behaviour the bench cache uses).
    StartFresh,
    /// Surface [`RuntimeError::Corrupt`] and let the caller decide.
    Fail,
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Where the run's checkpoint lives (one file, atomically replaced).
    pub checkpoint_path: PathBuf,
    /// Write a checkpoint every this many applied iterations
    /// (0 = only at completion).
    pub checkpoint_every: usize,
    /// Divergence rollbacks allowed per good checkpoint before aborting.
    pub max_rollbacks: u32,
    /// Learning-rate factor applied on each rollback (e.g. 0.5).
    pub lr_cut: f32,
    /// Reject a step whose gradient norm exceeds this multiple of the
    /// exponential moving average of recent norms.
    pub grad_spike_factor: f32,
    /// Applied steps before the spike guard arms (the first iterations of a
    /// run legitimately have wild gradient norms).
    pub grad_guard_warmup: usize,
    /// Additional attempts for a failed checkpoint write.
    pub io_retries: u32,
    /// Backoff before the first retry (doubles per attempt).
    pub io_backoff: Duration,
    /// Startup behaviour when the existing checkpoint is corrupt.
    pub resume_policy: ResumePolicy,
}

impl RuntimeConfig {
    /// Defaults for a checkpoint at `path`: checkpoint every 50 iterations,
    /// 3 rollbacks with a 0.5 LR cut, 10× spike guard armed after 5 steps,
    /// 3 I/O retries starting at 10 ms, start fresh on corruption.
    pub fn new(path: impl Into<PathBuf>) -> RuntimeConfig {
        RuntimeConfig {
            checkpoint_path: path.into(),
            checkpoint_every: 50,
            max_rollbacks: 3,
            lr_cut: 0.5,
            grad_spike_factor: 10.0,
            grad_guard_warmup: 5,
            io_retries: 3,
            io_backoff: Duration::from_millis(10),
            resume_policy: ResumePolicy::StartFresh,
        }
    }
}

/// Faults the harness can schedule.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Overwrite every gradient of the first parameter with NaN before the
    /// update (models an exploded backward pass).
    NanGradient,
    /// Overwrite the first weight of the first parameter with NaN before
    /// the forward pass (models silent memory corruption; the loss goes
    /// NaN and only a rollback can repair the parameter).
    NanParam,
    /// Fail the next `failures` checkpoint write *attempts* with an
    /// injected transient I/O error (exercises retry/backoff).
    WriteError {
        /// Number of consecutive attempts to fail.
        failures: u32,
    },
    /// Truncate the bytes of the next checkpoint write to `keep` bytes
    /// (models a torn write that still got published).
    TruncateWrite {
        /// Bytes to keep.
        keep: usize,
    },
    /// Abort the run with [`RuntimeError::Killed`] before this iteration's
    /// step (models `kill -9`; resume by calling [`run`] again).
    Kill,
}

/// A deterministic schedule of [`Fault`]s keyed by 0-based iteration.
///
/// Faults fire when the trainer is *about to run* that iteration, in
/// insertion order, and each fires exactly once (after a rollback re-runs
/// the iteration, the fault does not re-fire — otherwise no retry could
/// ever succeed).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: BTreeMap<usize, Vec<Fault>>,
}

impl FaultPlan {
    /// An empty plan (no faults — the production configuration).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule `fault` before iteration `iteration` (0-based). Builder-style.
    pub fn at(mut self, iteration: usize, fault: Fault) -> FaultPlan {
        self.faults.entry(iteration).or_default().push(fault);
        self
    }

    /// True if no faults remain.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    fn take(&mut self, iteration: usize) -> Vec<Fault> {
        self.faults.remove(&iteration).unwrap_or_default()
    }
}

/// What a completed [`run`] did.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Records of every applied iteration this process ran.
    pub records: Vec<TrainRecord>,
    /// Iteration the run resumed from, if a checkpoint was loaded.
    pub resumed_from: Option<usize>,
    /// Divergence rollbacks performed.
    pub rollbacks: u32,
    /// Checkpoints successfully written.
    pub checkpoints_written: u32,
    /// True if a corrupt checkpoint was found and discarded at startup.
    pub discarded_corrupt: bool,
}

// ---------------------------------------------------------------------------
// Checkpoint serialization
// ---------------------------------------------------------------------------

fn params_of(entries: &[(String, Tensor)]) -> Vec<Param> {
    entries.iter().map(|(n, t)| Param::new(n, t.clone())).collect()
}

/// Encode a [`RunState`] into the `PLTR` container: versioned header, run
/// metadata, loader state, two embedded `PLTW` blobs (model, velocity), and
/// a trailing CRC-32 over everything before it.
pub fn encode_checkpoint(state: &RunState) -> Bytes {
    let model = save_params(&params_of(&state.model));
    let velocity = save_params(&params_of(&state.velocity));
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(state.iteration as u64);
    buf.put_f32_le(state.lr_factor);
    buf.put_u64_le(state.loader.epoch as u64);
    buf.put_u64_le(state.loader.cursor as u64);
    buf.put_u32_le(state.loader.indices.len() as u32);
    for &i in &state.loader.indices {
        buf.put_u32_le(i as u32);
    }
    for &w in &state.loader.rng_state {
        buf.put_u64_le(w);
    }
    buf.put_u64_le(model.len() as u64);
    buf.put_slice(&model);
    buf.put_u64_le(velocity.len() as u64);
    buf.put_slice(&velocity);
    let checksum = crc32(&buf);
    buf.put_u32_le(checksum);
    buf.freeze()
}

fn need(buf: &[u8], n: usize, what: &str) -> Result<(), RuntimeError> {
    if buf.remaining() < n {
        return Err(RuntimeError::Corrupt(format!("truncated {what}")));
    }
    Ok(())
}

/// Decode a `PLTR` container produced by [`encode_checkpoint`].
///
/// The outer CRC is verified before anything is parsed, so truncation and
/// bit flips surface as [`RuntimeError::Corrupt`], never as garbage state.
pub fn decode_checkpoint(full: &[u8]) -> Result<RunState, RuntimeError> {
    if full.len() < 12 {
        return Err(RuntimeError::Corrupt("shorter than header".into()));
    }
    if &full[..4] != MAGIC {
        return Err(RuntimeError::Corrupt("bad magic".into()));
    }
    let version = u32::from_le_bytes(full[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(RuntimeError::Incompatible(format!(
            "checkpoint version {version}, this build reads {VERSION}"
        )));
    }
    let (body, tail) = full.split_at(full.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().unwrap());
    let actual = crc32(body);
    if stored != actual {
        return Err(RuntimeError::Corrupt(format!(
            "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }

    let mut buf = &body[8..];
    need(buf, 8 + 4 + 8 + 8 + 4, "run metadata")?;
    let iteration = buf.get_u64_le() as usize;
    let lr_factor = buf.get_f32_le();
    let epoch = buf.get_u64_le() as usize;
    let cursor = buf.get_u64_le() as usize;
    let n_indices = buf.get_u32_le() as usize;
    need(buf, n_indices * 4 + 32, "loader state")?;
    let mut indices = Vec::with_capacity(n_indices);
    for _ in 0..n_indices {
        indices.push(buf.get_u32_le() as usize);
    }
    let mut rng_state = [0u64; 4];
    for w in &mut rng_state {
        *w = buf.get_u64_le();
    }

    let read_blob = |what: &str, buf: &mut &[u8]| -> Result<Vec<(String, Tensor)>, RuntimeError> {
        need(buf, 8, what)?;
        let len = buf.get_u64_le() as usize;
        need(buf, len, what)?;
        let (blob, rest) = buf.split_at(len);
        let entries = decode(blob).map_err(|e| match e {
            WeightError::Corrupt(m) | WeightError::Malformed(m) => {
                RuntimeError::Corrupt(format!("{what}: {m}"))
            }
            other => RuntimeError::Corrupt(format!("{what}: {other}")),
        })?;
        *buf = rest;
        Ok(entries)
    };
    let model = read_blob("model blob", &mut buf)?;
    let velocity = read_blob("velocity blob", &mut buf)?;
    if !buf.is_empty() {
        return Err(RuntimeError::Corrupt(format!("{} trailing bytes", buf.len())));
    }

    Ok(RunState {
        iteration,
        lr_factor,
        model,
        velocity,
        loader: LoaderState { epoch, cursor, indices, rng_state },
    })
}

/// Read and validate the checkpoint at `path`.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<RunState, RuntimeError> {
    let buf = std::fs::read(path)?;
    decode_checkpoint(&buf)
}

/// Encode `state` and write it to `path` atomically, retrying transient
/// failures per the config.
pub fn write_checkpoint(state: &RunState, cfg: &RuntimeConfig) -> Result<(), RuntimeError> {
    fsio::atomic_write_retry(&cfg.checkpoint_path, &encode_checkpoint(state), cfg.io_retries, cfg.io_backoff)
        .map_err(RuntimeError::from)
}

// ---------------------------------------------------------------------------
// The supervised run loop
// ---------------------------------------------------------------------------

/// Pending injected-fault state for the current process.
#[derive(Default)]
struct Injector {
    nan_gradient: bool,
    nan_param: bool,
    write_failures: u32,
    truncate_next_write: Option<usize>,
}

impl Injector {
    fn arm(&mut self, faults: Vec<Fault>) -> Option<RuntimeError> {
        for fault in faults {
            match fault {
                Fault::NanGradient => self.nan_gradient = true,
                Fault::NanParam => self.nan_param = true,
                Fault::WriteError { failures } => self.write_failures += failures,
                Fault::TruncateWrite { keep } => self.truncate_next_write = Some(keep),
                Fault::Kill => return Some(RuntimeError::Killed { iteration: usize::MAX }),
            }
        }
        None
    }
}

fn poison_first(slice: &mut [f32]) {
    for v in slice.iter_mut() {
        *v = f32::NAN;
    }
}

/// Checkpoint write with fault injection layered over the retry loop.
fn write_with_faults(state: &RunState, cfg: &RuntimeConfig, injector: &mut Injector) -> Result<(), RuntimeError> {
    let mut bytes = encode_checkpoint(state).to_vec();
    if let Some(keep) = injector.truncate_next_write.take() {
        bytes.truncate(keep);
        // A torn write bypasses the retry loop: it "succeeds" from the
        // writer's point of view — detection happens at the next read.
        return fsio::atomic_write(&cfg.checkpoint_path, &bytes).map_err(RuntimeError::from);
    }
    let mut wait = cfg.io_backoff;
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..=cfg.io_retries {
        let result = if injector.write_failures > 0 {
            injector.write_failures -= 1;
            Err(io::Error::other("injected transient write failure"))
        } else {
            fsio::atomic_write(&cfg.checkpoint_path, &bytes)
        };
        match result {
            Ok(()) => return Ok(()),
            Err(e) => last_err = Some(e),
        }
        if attempt < cfg.io_retries {
            std::thread::sleep(wait);
            wait = wait.saturating_mul(2);
        }
    }
    Err(RuntimeError::Io(last_err.unwrap_or_else(|| io::Error::other("checkpoint write failed"))))
}

/// Runtime-level handles into a shared registry (`runtime.*` metrics);
/// per-step `train.*` metrics are attached to the trainer separately.
struct RuntimeMetrics {
    checkpoint_write_ms: std::sync::Arc<platter_obs::Histogram>,
    checkpoints_written: std::sync::Arc<platter_obs::Counter>,
    guard_trips: std::sync::Arc<platter_obs::Counter>,
    resumes: std::sync::Arc<platter_obs::Counter>,
}

impl RuntimeMetrics {
    fn register(registry: &MetricsRegistry) -> RuntimeMetrics {
        RuntimeMetrics {
            // 0.25 ms … ~4 s: micro checkpoints are sub-ms, full models not.
            checkpoint_write_ms: registry.histogram("runtime.checkpoint_write_ms", &exp_bounds(0.25, 2.0, 14)),
            checkpoints_written: registry.counter("runtime.checkpoints_written"),
            guard_trips: registry.counter("runtime.guard_trips"),
            resumes: registry.counter("runtime.resumes"),
        }
    }
}

/// Train `model` under the fault-tolerant runtime, resuming from the
/// checkpoint at `cfg.checkpoint_path` if one exists.
///
/// `plan` schedules injected faults ([`FaultPlan::none`] in production).
/// `on_log` observes every applied record. On success the checkpoint file
/// holds the completed run's final state.
pub fn run(
    model: &Yolov4,
    dataset: &SyntheticDataset,
    train_indices: &[usize],
    train_cfg: &TrainConfig,
    cfg: &RuntimeConfig,
    plan: FaultPlan,
    on_log: impl FnMut(&TrainRecord),
) -> Result<RunReport, RuntimeError> {
    run_inner(model, dataset, train_indices, train_cfg, cfg, plan, None, on_log)
}

/// [`run`] with observability: registers `train.*` metrics (step time, loss,
/// data/forward/backward split) and `runtime.*` metrics (checkpoint write
/// time, divergence-guard trips, resumes) in `registry` and emits into them
/// as the run progresses. Sample `registry.snapshot()` at any time — from a
/// monitoring thread or after the run — without pausing training.
#[allow(clippy::too_many_arguments)] // `run`'s signature plus the registry
pub fn run_observed(
    model: &Yolov4,
    dataset: &SyntheticDataset,
    train_indices: &[usize],
    train_cfg: &TrainConfig,
    cfg: &RuntimeConfig,
    plan: FaultPlan,
    registry: &MetricsRegistry,
    on_log: impl FnMut(&TrainRecord),
) -> Result<RunReport, RuntimeError> {
    run_inner(model, dataset, train_indices, train_cfg, cfg, plan, Some(registry), on_log)
}

#[allow(clippy::too_many_arguments)] // internal: the union of run/run_observed
fn run_inner(
    model: &Yolov4,
    dataset: &SyntheticDataset,
    train_indices: &[usize],
    train_cfg: &TrainConfig,
    cfg: &RuntimeConfig,
    mut plan: FaultPlan,
    registry: Option<&MetricsRegistry>,
    mut on_log: impl FnMut(&TrainRecord),
) -> Result<RunReport, RuntimeError> {
    let mut trainer = Trainer::new(model, dataset, train_indices, train_cfg);
    let metrics = registry.map(|reg| {
        trainer.attach_metrics(TrainMetrics::register(reg));
        RuntimeMetrics::register(reg)
    });
    let mut report = RunReport::default();
    let mut injector = Injector::default();

    // Resume if a checkpoint exists.
    let mut last_good = if cfg.checkpoint_path.exists() {
        match read_checkpoint(&cfg.checkpoint_path) {
            Ok(state) => {
                trainer.restore(&state).map_err(RuntimeError::Incompatible)?;
                report.resumed_from = Some(state.iteration);
                if let Some(m) = &metrics {
                    m.resumes.inc();
                }
                state
            }
            Err(RuntimeError::Io(e)) => return Err(RuntimeError::Io(e)),
            Err(err) if cfg.resume_policy == ResumePolicy::Fail => return Err(err),
            Err(_) => {
                report.discarded_corrupt = true;
                std::fs::remove_file(&cfg.checkpoint_path).ok();
                trainer.snapshot()
            }
        }
    } else {
        trainer.snapshot()
    };

    let mut rollbacks_since_good = 0u32;
    let mut grad_ema: Option<f32> = None;
    let mut applied_since_start = 0usize;

    while !trainer.is_done() {
        let iteration = trainer.iteration();
        if injector.arm(plan.take(iteration)).is_some() {
            return Err(RuntimeError::Killed { iteration });
        }

        if std::mem::take(&mut injector.nan_param) {
            let params = model.parameters();
            let inner = &mut params[0].borrow_mut().value;
            poison_first(&mut inner.as_mut_slice()[..1]);
        }
        let inject_grad = std::mem::take(&mut injector.nan_gradient);

        let spike_limit = match (grad_ema, applied_since_start >= cfg.grad_guard_warmup) {
            (Some(ema), true) => Some(cfg.grad_spike_factor * ema.max(1e-6)),
            _ => None,
        };
        let (record, applied) = trainer.try_step(
            |params| {
                if inject_grad {
                    poison_first(params[0].borrow_mut().grad.as_mut_slice());
                }
            },
            |rec| {
                rec.loss.total.is_finite()
                    && rec.grad_norm.is_finite()
                    && spike_limit.is_none_or(|limit| rec.grad_norm <= limit)
            },
        );

        if applied {
            rollbacks_since_good = 0;
            applied_since_start += 1;
            grad_ema = Some(match grad_ema {
                Some(ema) => 0.9 * ema + 0.1 * record.grad_norm,
                None => record.grad_norm,
            });
            on_log(&record);
            report.records.push(record);

            let done = trainer.is_done();
            let due = cfg.checkpoint_every > 0 && record.iteration % cfg.checkpoint_every == 0;
            if due || done {
                let snapshot = trainer.snapshot();
                let write_start = std::time::Instant::now();
                write_with_faults(&snapshot, cfg, &mut injector)?;
                if let Some(m) = &metrics {
                    m.checkpoint_write_ms.record(write_start.elapsed().as_secs_f64() * 1e3);
                    m.checkpoints_written.inc();
                }
                report.checkpoints_written += 1;
                last_good = snapshot;
            }
        } else {
            if let Some(m) = &metrics {
                m.guard_trips.inc();
            }
            report.rollbacks += 1;
            rollbacks_since_good += 1;
            if rollbacks_since_good > cfg.max_rollbacks {
                return Err(RuntimeError::Diverged {
                    iteration,
                    rollbacks: report.rollbacks,
                    last_loss: record.loss.total,
                });
            }
            let cut = trainer.lr_factor() * cfg.lr_cut;
            trainer.restore(&last_good).map_err(RuntimeError::Incompatible)?;
            trainer.set_lr_factor(cut);
            grad_ema = None;
            applied_since_start = 0;
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::YoloConfig;
    use crate::train::TrainConfig;
    use platter_dataset::{ClassSet, DatasetSpec, Split};

    fn tiny_dataset() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 16, 64, 3))
    }

    fn micro_cfg(iterations: usize) -> TrainConfig {
        let mut cfg = TrainConfig::micro(iterations);
        cfg.batch_size = 2;
        cfg.mosaic_prob = 0.0;
        cfg.seed = 11;
        cfg
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("platter_runtime_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        path
    }

    fn rt_cfg(path: PathBuf, every: usize) -> RuntimeConfig {
        let mut cfg = RuntimeConfig::new(path);
        cfg.checkpoint_every = every;
        cfg.io_backoff = Duration::from_millis(1);
        cfg
    }

    #[test]
    fn checkpoint_encode_decode_round_trip() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let model = Yolov4::new(YoloConfig::micro(10), 9);
        let cfg = micro_cfg(6);
        let mut trainer = Trainer::new(&model, &ds, &split.train, &cfg);
        trainer.step();
        trainer.step();
        let state = trainer.snapshot();
        let decoded = decode_checkpoint(&encode_checkpoint(&state)).unwrap();
        assert_eq!(decoded.iteration, 2);
        assert_eq!(decoded.lr_factor, state.lr_factor);
        assert_eq!(decoded.loader, state.loader);
        assert_eq!(decoded.model.len(), state.model.len());
        for ((n1, t1), (n2, t2)) in state.model.iter().zip(&decoded.model) {
            assert_eq!(n1, n2);
            assert_eq!(t1.as_slice(), t2.as_slice());
            assert_eq!(t1.shape(), t2.shape());
        }
        for ((n1, t1), (n2, t2)) in state.velocity.iter().zip(&decoded.velocity) {
            assert_eq!(n1, n2);
            assert_eq!(t1.as_slice(), t2.as_slice());
        }
    }

    #[test]
    fn checkpoint_corruption_and_truncation_detected() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let model = Yolov4::new(YoloConfig::micro(10), 9);
        let cfg = micro_cfg(2);
        let trainer = Trainer::new(&model, &ds, &split.train, &cfg);
        let bytes = encode_checkpoint(&trainer.snapshot());

        for pos in [9usize, 40, bytes.len() / 2, bytes.len() - 2] {
            let mut bad = bytes.to_vec();
            bad[pos] ^= 0x20;
            assert!(
                matches!(decode_checkpoint(&bad), Err(RuntimeError::Corrupt(_))),
                "bit flip at {pos} must be caught"
            );
        }
        for keep in [bytes.len() - 3, bytes.len() / 3, 13, 5] {
            assert!(
                matches!(decode_checkpoint(&bytes[..keep]), Err(RuntimeError::Corrupt(_))),
                "truncation to {keep} must be caught"
            );
        }
        // Future version → Incompatible, not Corrupt.
        let mut future = bytes.to_vec();
        future[4] = 99;
        assert!(matches!(decode_checkpoint(&future), Err(RuntimeError::Incompatible(_))));
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_trajectory() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let cfg = micro_cfg(10);

        // Reference: uninterrupted run.
        let model_a = Yolov4::new(YoloConfig::micro(10), 9);
        let path_a = scratch("uninterrupted.pltr");
        let report_a = run(
            &model_a, &ds, &split.train, &cfg,
            &rt_cfg(path_a.clone(), 2), FaultPlan::none(), |_| {},
        )
        .unwrap();
        assert_eq!(report_a.records.len(), 10);
        assert_eq!(report_a.rollbacks, 0);
        assert!(report_a.resumed_from.is_none());

        // Crashed run: killed before iteration 5 (last checkpoint at 4).
        let model_b = Yolov4::new(YoloConfig::micro(10), 9);
        let path_b = scratch("killed.pltr");
        let plan = FaultPlan::none().at(5, Fault::Kill);
        let err = run(
            &model_b, &ds, &split.train, &cfg,
            &rt_cfg(path_b.clone(), 2), plan, |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::Killed { iteration: 5 }));

        // "New process": fresh model object, same checkpoint path.
        let model_c = Yolov4::new(YoloConfig::micro(10), 77);
        let report_c = run(
            &model_c, &ds, &split.train, &cfg,
            &rt_cfg(path_b.clone(), 2), FaultPlan::none(), |_| {},
        )
        .unwrap();
        assert_eq!(report_c.resumed_from, Some(4));
        assert_eq!(report_c.records.len(), 6);

        // The resumed tail must replay the uninterrupted trajectory exactly.
        for (a, c) in report_a.records[4..].iter().zip(&report_c.records) {
            assert_eq!(a.iteration, c.iteration);
            assert_eq!(
                a.loss.total.to_bits(),
                c.loss.total.to_bits(),
                "iteration {}: {} vs {}",
                a.iteration,
                a.loss.total,
                c.loss.total
            );
            assert_eq!(a.grad_norm.to_bits(), c.grad_norm.to_bits());
            assert_eq!(a.lr.to_bits(), c.lr.to_bits());
        }
        // Final weights identical bit-for-bit.
        assert_eq!(model_a.save().as_ref() as &[u8], model_c.save().as_ref() as &[u8]);
        std::fs::remove_file(path_a).ok();
        std::fs::remove_file(path_b).ok();
    }

    #[test]
    fn nan_gradient_rolls_back_and_recovers() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let cfg = micro_cfg(8);
        let model = Yolov4::new(YoloConfig::micro(10), 9);
        let path = scratch("nan_grad.pltr");
        let plan = FaultPlan::none().at(4, Fault::NanGradient);
        let report = run(
            &model, &ds, &split.train, &cfg,
            &rt_cfg(path.clone(), 2), plan, |_| {},
        )
        .unwrap();
        assert_eq!(report.rollbacks, 1);
        assert_eq!(report.records.len(), 8, "all iterations eventually applied");
        assert!(report.records.iter().all(|r| r.loss.total.is_finite()));
        // The LR cut shows up in post-rollback records: iteration 5 ran at
        // half the schedule's rate (burn-in is still ramping, so compare
        // against the schedule, not the previous record).
        let schedule = platter_tensor::LrSchedule::darknet(cfg.lr, cfg.iterations);
        let expected = schedule.lr_at(4) * 0.5;
        assert!(
            (report.records[4].lr - expected).abs() < 1e-9,
            "rollback must cut the learning rate: {} vs expected {expected}",
            report.records[4].lr
        );
        // Model is finite everywhere.
        for p in model.parameters() {
            assert!(p.value().as_slice().iter().all(|v| v.is_finite()));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn observed_run_populates_registry() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let cfg = micro_cfg(4);
        let model = Yolov4::new(YoloConfig::micro(10), 9);
        let path = scratch("observed.pltr");
        let plan = FaultPlan::none().at(2, Fault::NanGradient);
        let registry = MetricsRegistry::new();
        let report = run_observed(
            &model, &ds, &split.train, &cfg,
            &rt_cfg(path.clone(), 2), plan, &registry, |_| {},
        )
        .unwrap();
        assert_eq!(report.rollbacks, 1);

        let snap = registry.snapshot();
        let counter = |n: &str| snap.counters.iter().find(|c| c.name == n).unwrap().value;
        let hist = |n: &str| snap.histograms.iter().find(|h| h.name == n).unwrap();
        assert_eq!(counter("runtime.guard_trips"), u64::from(report.rollbacks));
        assert_eq!(counter("runtime.checkpoints_written"), u64::from(report.checkpoints_written));
        assert_eq!(counter("runtime.resumes"), 0);
        assert_eq!(counter("train.steps"), report.records.len() as u64);
        assert_eq!(counter("train.steps_rejected"), u64::from(report.rollbacks));
        assert_eq!(hist("runtime.checkpoint_write_ms").count, u64::from(report.checkpoints_written));
        // Steps + rejected attempts all record a step time and a loss; the
        // injected NaN gradient still yields a finite loss (the gradient is
        // poisoned after the loss is computed), so nothing is dropped here.
        let attempts = report.records.len() as u64 + u64::from(report.rollbacks);
        assert_eq!(hist("train.step_ms").count, attempts);
        assert_eq!(hist("train.loss").count + hist("train.loss").dropped, attempts);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn nan_param_rolls_back_to_finite_loss() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let cfg = micro_cfg(6);
        let model = Yolov4::new(YoloConfig::micro(10), 9);
        let path = scratch("nan_param.pltr");
        let plan = FaultPlan::none().at(3, Fault::NanParam);
        let report = run(
            &model, &ds, &split.train, &cfg,
            &rt_cfg(path.clone(), 1), plan, |_| {},
        )
        .unwrap();
        assert_eq!(report.rollbacks, 1);
        assert_eq!(report.records.len(), 6);
        assert!(report.records.iter().all(|r| r.loss.total.is_finite()));
        for p in model.parameters() {
            assert!(
                p.value().as_slice().iter().all(|v| v.is_finite()),
                "{} still poisoned after rollback",
                p.name()
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn repeated_divergence_aborts_with_structured_error() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let cfg = micro_cfg(6);
        let model = Yolov4::new(YoloConfig::micro(10), 9);
        let path = scratch("diverge.pltr");
        let mut rcfg = rt_cfg(path.clone(), 1);
        // Zero retry budget: the first rejected step must abort the run.
        rcfg.max_rollbacks = 0;
        let plan = FaultPlan::none().at(2, Fault::NanParam);
        let err = run(
            &model, &ds, &split.train, &cfg,
            &rcfg, plan, |_| {},
        )
        .unwrap_err();
        match err {
            RuntimeError::Diverged { iteration, rollbacks, last_loss } => {
                assert_eq!(iteration, 2);
                assert_eq!(rollbacks, 1);
                assert!(last_loss.is_nan() || !last_loss.is_finite());
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn transient_write_failures_are_retried() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let cfg = micro_cfg(4);
        let model = Yolov4::new(YoloConfig::micro(10), 9);
        let path = scratch("retry.pltr");
        let mut rcfg = rt_cfg(path.clone(), 2);
        rcfg.io_retries = 3;
        // Two injected failures at the iteration-2 checkpoint; retries absorb them.
        let plan = FaultPlan::none().at(1, Fault::WriteError { failures: 2 });
        let report = run(
            &model, &ds, &split.train, &cfg,
            &rcfg, plan, |_| {},
        )
        .unwrap();
        assert_eq!(report.checkpoints_written, 2);
        assert!(read_checkpoint(&path).is_ok());

        // More failures than retries → structured I/O error.
        std::fs::remove_file(&path).ok();
        let model2 = Yolov4::new(YoloConfig::micro(10), 9);
        let mut rcfg2 = rt_cfg(path.clone(), 2);
        rcfg2.io_retries = 1;
        let plan2 = FaultPlan::none().at(1, Fault::WriteError { failures: 5 });
        let err = run(
            &model2, &ds, &split.train, &cfg,
            &rcfg2, plan2, |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::Io(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_checkpoint_is_detected_and_policy_applies() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let cfg = micro_cfg(4);
        let model = Yolov4::new(YoloConfig::micro(10), 9);
        let path = scratch("torn.pltr");
        // Truncate the final checkpoint write, then "crash" immediately after.
        let plan = FaultPlan::none().at(3, Fault::TruncateWrite { keep: 64 });
        let report = run(
            &model, &ds, &split.train, &cfg,
            &rt_cfg(path.clone(), 0), plan, |_| {},
        );
        // checkpoint_every=0 → only the final write, which was truncated.
        assert!(report.is_ok());
        assert!(matches!(read_checkpoint(&path), Err(RuntimeError::Corrupt(_))));

        // StartFresh policy: a new run discards the torn file and restarts.
        let model2 = Yolov4::new(YoloConfig::micro(10), 9);
        let report2 = run(
            &model2, &ds, &split.train, &cfg,
            &rt_cfg(path.clone(), 0), FaultPlan::none(), |_| {},
        )
        .unwrap();
        assert!(report2.discarded_corrupt);
        assert!(report2.resumed_from.is_none());
        assert_eq!(report2.records.len(), 4);

        // Fail policy: surface the corruption instead.
        let torn = encode_checkpoint(&Trainer::new(&model2, &ds, &split.train, &cfg).snapshot());
        std::fs::write(&path, &torn[..torn.len() / 2]).unwrap();
        let model3 = Yolov4::new(YoloConfig::micro(10), 9);
        let mut rcfg3 = rt_cfg(path.clone(), 0);
        rcfg3.resume_policy = ResumePolicy::Fail;
        let err = run(
            &model3, &ds, &split.train, &cfg,
            &rcfg3, FaultPlan::none(), |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::Corrupt(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn completed_run_leaves_resumable_final_checkpoint() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let cfg = micro_cfg(3);
        let model = Yolov4::new(YoloConfig::micro(10), 9);
        let path = scratch("final.pltr");
        run(&model, &ds, &split.train, &cfg, &rt_cfg(path.clone(), 0), FaultPlan::none(), |_| {}).unwrap();
        let state = read_checkpoint(&path).unwrap();
        assert_eq!(state.iteration, 3);
        // Re-running on the completed checkpoint is a no-op resume.
        let model2 = Yolov4::new(YoloConfig::micro(10), 5);
        let report = run(&model2, &ds, &split.train, &cfg, &rt_cfg(path.clone(), 0), FaultPlan::none(), |_| {}).unwrap();
        assert_eq!(report.resumed_from, Some(3));
        assert!(report.records.is_empty());
        std::fs::remove_file(path).ok();
    }
}
