//! Anchor estimation by k-means clustering under the IoU distance
//! (`d = 1 − IoU(box, anchor)`), as darknet's `-calc_anchors` does.

use platter_imaging::NormBox;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::config::ANCHORS_PER_SCALE;

/// IoU of two boxes compared purely by width/height (both anchored at the
/// origin) — the metric darknet clusters with.
pub fn wh_iou(a: (f32, f32), b: (f32, f32)) -> f32 {
    let inter = a.0.min(b.0) * a.1.min(b.1);
    let union = a.0 * a.1 + b.0 * b.1 - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Cluster ground-truth box sizes into `k` anchors (sorted by area).
///
/// Standard k-means with the 1−IoU distance and mean-updates; empty clusters
/// are reseeded from the largest cluster.
pub fn kmeans_anchors(boxes: &[NormBox], k: usize, seed: u64) -> Vec<(f32, f32)> {
    assert!(k > 0, "k must be positive");
    let sizes: Vec<(f32, f32)> = boxes
        .iter()
        .filter(|b| b.w > 1e-4 && b.h > 1e-4)
        .map(|b| (b.w, b.h))
        .collect();
    assert!(sizes.len() >= k, "need at least k={k} boxes, got {}", sizes.len());

    let mut rng = StdRng::seed_from_u64(seed);
    // Init: k-means++ under the 1−IoU distance. A uniform draw can land two
    // centroids inside the same tight cluster and the mean-update step never
    // separates them; D²-weighted seeding spreads the initial centroids.
    let mut centroids: Vec<(f32, f32)> = Vec::with_capacity(k);
    centroids.push(sizes[rng.random_range(0..sizes.len())]);
    while centroids.len() < k {
        let dists: Vec<f32> = sizes
            .iter()
            .map(|&s| {
                centroids
                    .iter()
                    .map(|&c| 1.0 - wh_iou(s, c))
                    .fold(f32::INFINITY, f32::min)
                    .powi(2)
            })
            .collect();
        let total: f32 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All candidates coincide with a centroid; any pick works.
            sizes[rng.random_range(0..sizes.len())]
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut pick = sizes.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            sizes[pick]
        };
        centroids.push(next);
    }

    let mut assignment = vec![0usize; sizes.len()];
    for _ in 0..100 {
        let mut changed = false;
        for (i, &s) in sizes.iter().enumerate() {
            let best = (0..k)
                .max_by(|&a, &b| {
                    wh_iou(s, centroids[a]).total_cmp(&wh_iou(s, centroids[b]))
                })
                .unwrap();
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update step: per-cluster means.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
        for (i, &s) in sizes.iter().enumerate() {
            let slot = &mut sums[assignment[i]];
            slot.0 += s.0 as f64;
            slot.1 += s.1 as f64;
            slot.2 += 1;
        }
        for (c, &(sw, sh, n)) in centroids.iter_mut().zip(&sums) {
            if n > 0 {
                *c = ((sw / n as f64) as f32, (sh / n as f64) as f32);
            } else {
                // Reseed an empty cluster from a random member.
                *c = sizes[rng.random_range(0..sizes.len())];
            }
        }
        if !changed {
            break;
        }
    }
    centroids.sort_by(|a, b| (a.0 * a.1).total_cmp(&(b.0 * b.1)));
    centroids
}

/// Arrange 9 clustered anchors into the 3×3 per-scale layout (small anchors
/// to the stride-8 head, large to stride-32).
pub fn anchors_to_scales(anchors: &[(f32, f32)]) -> [[(f32, f32); ANCHORS_PER_SCALE]; 3] {
    assert_eq!(anchors.len(), 9, "expected 9 anchors");
    let mut out = [[(0.0, 0.0); ANCHORS_PER_SCALE]; 3];
    for s in 0..3 {
        for a in 0..ANCHORS_PER_SCALE {
            out[s][a] = anchors[s * ANCHORS_PER_SCALE + a];
        }
    }
    out
}

/// Mean best-IoU of the boxes against the anchor set — darknet reports this
/// as the clustering quality figure.
pub fn mean_best_iou(boxes: &[NormBox], anchors: &[(f32, f32)]) -> f32 {
    if boxes.is_empty() {
        return 0.0;
    }
    let total: f32 = boxes
        .iter()
        .map(|b| {
            anchors
                .iter()
                .map(|&a| wh_iou((b.w, b.h), a))
                .fold(0.0f32, f32::max)
        })
        .sum();
    total / boxes.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes_from(sizes: &[(f32, f32)]) -> Vec<NormBox> {
        sizes.iter().map(|&(w, h)| NormBox::new(0.5, 0.5, w, h)).collect()
    }

    #[test]
    fn wh_iou_basics() {
        assert!((wh_iou((0.2, 0.2), (0.2, 0.2)) - 1.0).abs() < 1e-6);
        assert!((wh_iou((0.2, 0.2), (0.1, 0.1)) - 0.25).abs() < 1e-6);
        assert_eq!(wh_iou((0.0, 0.0), (0.1, 0.1)), 0.0);
    }

    #[test]
    fn kmeans_recovers_clear_clusters() {
        // Three tight size clusters.
        let mut sizes = Vec::new();
        for i in 0..30 {
            let e = (i % 5) as f32 * 0.002;
            sizes.push((0.1 + e, 0.1 + e));
            sizes.push((0.4 + e, 0.35 + e));
            sizes.push((0.8 + e, 0.75 + e));
        }
        let anchors = kmeans_anchors(&boxes_from(&sizes), 3, 1);
        assert!((anchors[0].0 - 0.104).abs() < 0.02, "{anchors:?}");
        assert!((anchors[1].0 - 0.404).abs() < 0.02, "{anchors:?}");
        assert!((anchors[2].0 - 0.804).abs() < 0.02, "{anchors:?}");
    }

    #[test]
    fn anchors_sorted_by_area() {
        let sizes: Vec<(f32, f32)> = (1..=40).map(|i| (i as f32 * 0.02, i as f32 * 0.015)).collect();
        let anchors = kmeans_anchors(&boxes_from(&sizes), 9, 3);
        for w in anchors.windows(2) {
            assert!(w[0].0 * w[0].1 <= w[1].0 * w[1].1 + 1e-6);
        }
        let scales = anchors_to_scales(&anchors);
        assert!(scales[0][0].0 * scales[0][0].1 <= scales[2][2].0 * scales[2][2].1);
    }

    #[test]
    fn mean_best_iou_improves_with_k() {
        let sizes: Vec<(f32, f32)> = (1..=50).map(|i| (0.05 + i as f32 * 0.015, 0.05 + (i % 7) as f32 * 0.05)).collect();
        let boxes = boxes_from(&sizes);
        let a3 = kmeans_anchors(&boxes, 3, 7);
        let a9 = kmeans_anchors(&boxes, 9, 7);
        assert!(mean_best_iou(&boxes, &a9) >= mean_best_iou(&boxes, &a3) - 1e-3);
        assert!(mean_best_iou(&boxes, &a9) > 0.6);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn kmeans_requires_enough_boxes() {
        kmeans_anchors(&boxes_from(&[(0.1, 0.1)]), 3, 0);
    }
}
