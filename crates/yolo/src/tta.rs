//! Test-time augmentation: run the compiled detector over N deterministic
//! views of the same batch (identity, horizontal flip, centre zoom-crops),
//! map every detection back into the original frame, and merge the union
//! through the hardened NaN-safe [`nms`].
//!
//! Each view is one more plan execution on the already-compiled engine — no
//! recompilation, no tape. The merge pre-sorts the union into a canonical
//! order (score desc via `total_cmp`, then class and box fields as
//! tie-breaks) before handing it to `nms`, whose own tie-break is input
//! order; that makes the merged output invariant under permutation of the
//! per-view detection sets, which the property suite pins down.

use platter_imaging::NormBox;
use platter_tensor::Tensor;

use crate::nms::{nms, Detection, NmsKind};

/// A TTA configuration the detector refuses to run: NaN / out-of-range
/// fields, or a view list that adds nothing over a single pass.
#[derive(Clone, Debug, PartialEq)]
pub enum TtaError {
    /// A field is NaN or infinite.
    NonFinite {
        /// Name of the offending field.
        field: &'static str,
    },
    /// A field is finite but outside its legal interval.
    OutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// Neither a flip nor any zoom crop was requested — that is just a
    /// slower single pass, so it is rejected as a configuration mistake.
    NoAuxViews,
}

impl std::fmt::Display for TtaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TtaError::NonFinite { field } => write!(f, "field `{field}` is not finite"),
            TtaError::OutOfRange { field, value, lo, hi } => {
                write!(f, "field `{field}` = {value} outside [{lo}, {hi}]")
            }
            TtaError::NoAuxViews => write!(f, "TTA with no flip and no zoom crops is a plain single pass"),
        }
    }
}

impl std::error::Error for TtaError {}

fn check(field: &'static str, value: f64, lo: f64, hi: f64) -> Result<(), TtaError> {
    if !value.is_finite() {
        return Err(TtaError::NonFinite { field });
    }
    if value < lo || value > hi {
        return Err(TtaError::OutOfRange { field, value, lo, hi });
    }
    Ok(())
}

/// Validated test-time augmentation settings.
#[derive(Clone, Debug, PartialEq)]
pub struct TtaConfig {
    hflip: bool,
    zoom_crops: Vec<f32>,
    aux_weight: f32,
}

impl TtaConfig {
    /// Build a config: every zoom-crop fraction must be finite in
    /// `[0.2, 0.95]`, `aux_weight` finite in `[0.05, 1.0]`, and at least
    /// one auxiliary view must be requested.
    pub fn new(hflip: bool, zoom_crops: Vec<f32>, aux_weight: f32) -> Result<TtaConfig, TtaError> {
        for &c in &zoom_crops {
            check("zoom_crop", c as f64, 0.2, 0.95)?;
        }
        check("aux_weight", aux_weight as f64, 0.05, 1.0)?;
        if !hflip && zoom_crops.is_empty() {
            return Err(TtaError::NoAuxViews);
        }
        Ok(TtaConfig { hflip, zoom_crops, aux_weight })
    }

    /// The default recipe: horizontal flip plus a 0.75 centre zoom-crop,
    /// auxiliary detections at full weight.
    pub fn standard() -> TtaConfig {
        TtaConfig::new(true, vec![0.75], 1.0).expect("standard recipe is valid")
    }

    /// A view set tuned for one degradation condition, instead of the
    /// one-size [`TtaConfig::standard`] recipe (the robustness table showed
    /// occlusion and extreme scale are the two conditions where TTA pays;
    /// see DESIGN.md §13).
    ///
    /// * [`TtaCondition::Occlusion`] — partially hidden dishes: two zoom
    ///   levels so an occluder at one scale still leaves an unblocked view,
    ///   auxiliaries slightly discounted (crops also magnify the occluder
    ///   when it is central).
    /// * [`TtaCondition::ExtremeScale`] — dishes rendered far smaller than
    ///   the anchor prior: deeper crops (0.5, 0.7) so small objects reach
    ///   the scale the detector was trained at, full auxiliary weight — the
    ///   zoomed views are the *better* views here.
    /// * [`TtaCondition::Standard`] — the default recipe, so callers can
    ///   key the preset off a condition label unconditionally.
    pub fn for_condition(condition: TtaCondition) -> TtaConfig {
        match condition {
            TtaCondition::Standard => TtaConfig::standard(),
            TtaCondition::Occlusion => {
                TtaConfig::new(true, vec![0.6, 0.8], 0.85).expect("occlusion recipe is valid")
            }
            TtaCondition::ExtremeScale => {
                TtaConfig::new(true, vec![0.5, 0.7], 1.0).expect("extreme-scale recipe is valid")
            }
        }
    }

    /// Whether the horizontal-flip view runs.
    pub fn hflip(&self) -> bool {
        self.hflip
    }

    /// Centre zoom-crop fractions (one extra view each).
    pub fn zoom_crops(&self) -> &[f32] {
        &self.zoom_crops
    }

    /// Score multiplier for non-identity views.
    pub fn aux_weight(&self) -> f32 {
        self.aux_weight
    }

    /// The view sequence: identity first, then flip, then crops.
    pub fn views(&self) -> Vec<TtaView> {
        let mut v = vec![TtaView::Identity];
        if self.hflip {
            v.push(TtaView::HFlip);
        }
        v.extend(self.zoom_crops.iter().map(|&c| TtaView::ZoomCrop(c)));
        v
    }
}

/// A degradation condition with a tuned TTA preset (see
/// [`TtaConfig::for_condition`]). Named after the `imaging::degrade` ops
/// whose robustness cells TTA measurably improves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TtaCondition {
    /// No particular degradation expected: the default recipe.
    Standard,
    /// Dishes partially hidden behind occluders.
    Occlusion,
    /// Dishes far smaller (or larger) than the training scale.
    ExtremeScale,
}

/// One deterministic input transform with a known box inverse.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TtaView {
    /// The untouched batch.
    Identity,
    /// Mirror along the width axis.
    HFlip,
    /// Bilinear zoom into the central `fraction` of the frame.
    ZoomCrop(f32),
}

impl TtaView {
    /// True for the un-augmented view (full score weight).
    pub fn is_identity(&self) -> bool {
        matches!(self, TtaView::Identity)
    }

    /// Apply the view to a `[n, c, s, s]` batch.
    pub fn transform_batch(&self, batch: &Tensor) -> Tensor {
        let shape = batch.shape().to_vec();
        assert_eq!(shape.len(), 4, "TTA expects a [n, c, s, s] batch");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let data = batch.as_slice();
        match *self {
            TtaView::Identity => batch.clone(),
            TtaView::HFlip => {
                let mut out = vec![0.0f32; data.len()];
                for plane in 0..n * c {
                    let base = plane * h * w;
                    for y in 0..h {
                        let row = base + y * w;
                        for x in 0..w {
                            out[row + x] = data[row + (w - 1 - x)];
                        }
                    }
                }
                Tensor::from_vec(out, &shape)
            }
            TtaView::ZoomCrop(frac) => {
                let mut out = vec![0.0f32; data.len()];
                let off_x = (1.0 - frac) * 0.5 * w as f32;
                let off_y = (1.0 - frac) * 0.5 * h as f32;
                for plane in 0..n * c {
                    let base = plane * h * w;
                    for y in 0..h {
                        let sy = off_y + (y as f32 + 0.5) * frac - 0.5;
                        for x in 0..w {
                            let sx = off_x + (x as f32 + 0.5) * frac - 0.5;
                            out[base + y * w + x] = bilinear_plane(&data[base..base + h * w], w, h, sx, sy);
                        }
                    }
                }
                Tensor::from_vec(out, &shape)
            }
        }
    }

    /// Map a box detected in this view back into the original frame.
    pub fn untransform_box(&self, bbox: &NormBox) -> NormBox {
        match *self {
            TtaView::Identity => *bbox,
            TtaView::HFlip => bbox.flipped_horizontal(),
            TtaView::ZoomCrop(frac) => {
                let off = (1.0 - frac) * 0.5;
                bbox.affine(frac, frac, off, off)
            }
        }
    }
}

/// Clamped bilinear sample on one `w`×`h` channel plane.
fn bilinear_plane(plane: &[f32], w: usize, h: usize, x: f32, y: f32) -> f32 {
    let x = x.clamp(0.0, (w - 1) as f32);
    let y = y.clamp(0.0, (h - 1) as f32);
    let x0 = x.floor() as usize;
    let y0 = y.floor() as usize;
    let x1 = (x0 + 1).min(w - 1);
    let y1 = (y0 + 1).min(h - 1);
    let fx = x - x0 as f32;
    let fy = y - y0 as f32;
    let top = plane[y0 * w + x0] * (1.0 - fx) + plane[y0 * w + x1] * fx;
    let bottom = plane[y1 * w + x0] * (1.0 - fx) + plane[y1 * w + x1] * fx;
    top * (1.0 - fy) + bottom * fy
}

/// Merge per-view detection sets (already mapped back to the original
/// frame) through NMS. The union is first sorted into a canonical order —
/// score descending via `total_cmp`, then class, then box fields — so the
/// result does not depend on the order the views arrive in.
pub fn merge_tta(sets: Vec<Vec<Detection>>, iou: f32, kind: NmsKind) -> Vec<Detection> {
    let mut all: Vec<Detection> = sets.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.class.cmp(&b.class))
            .then_with(|| a.bbox.cx.total_cmp(&b.bbox.cx))
            .then_with(|| a.bbox.cy.total_cmp(&b.bbox.cy))
            .then_with(|| a.bbox.w.total_cmp(&b.bbox.w))
            .then_with(|| a.bbox.h.total_cmp(&b.bbox.h))
    });
    nms(all, iou, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: usize, score: f32, cx: f32, cy: f32, w: f32, h: f32) -> Detection {
        Detection { class, score, bbox: NormBox::new(cx, cy, w, h) }
    }

    #[test]
    fn config_validates_fields() {
        assert!(TtaConfig::new(true, vec![0.75], 1.0).is_ok());
        assert!(matches!(
            TtaConfig::new(true, vec![f32::NAN], 1.0),
            Err(TtaError::NonFinite { field: "zoom_crop" })
        ));
        assert!(matches!(
            TtaConfig::new(true, vec![0.1], 1.0),
            Err(TtaError::OutOfRange { field: "zoom_crop", .. })
        ));
        assert!(matches!(TtaConfig::new(true, vec![], 0.0), Err(TtaError::OutOfRange { field: "aux_weight", .. })));
        assert!(matches!(TtaConfig::new(false, vec![], 1.0), Err(TtaError::NoAuxViews)));
    }

    #[test]
    fn condition_presets_table() {
        // (condition, expected views, expected zoom crops, aux weight)
        let table: &[(TtaCondition, usize, &[f32], f32)] = &[
            (TtaCondition::Standard, 3, &[0.75], 1.0),
            (TtaCondition::Occlusion, 4, &[0.6, 0.8], 0.85),
            (TtaCondition::ExtremeScale, 4, &[0.5, 0.7], 1.0),
        ];
        for &(cond, n_views, crops, aux) in table {
            let cfg = TtaConfig::for_condition(cond);
            let views = cfg.views();
            assert_eq!(views.len(), n_views, "{cond:?}: view count");
            assert_eq!(views[0], TtaView::Identity, "{cond:?}: identity first");
            assert!(cfg.hflip(), "{cond:?}: every preset keeps the flip view");
            assert_eq!(cfg.zoom_crops(), crops, "{cond:?}: zoom crops");
            assert!((cfg.aux_weight() - aux).abs() < 1e-6, "{cond:?}: aux weight");
            // Every preset must round-trip the validating constructor.
            TtaConfig::new(cfg.hflip(), cfg.zoom_crops().to_vec(), cfg.aux_weight())
                .expect("preset passes its own validation");
        }
        assert_eq!(TtaConfig::for_condition(TtaCondition::Standard), TtaConfig::standard());
    }

    #[test]
    fn standard_views_start_with_identity() {
        let views = TtaConfig::standard().views();
        assert_eq!(views[0], TtaView::Identity);
        assert!(views.len() >= 3);
    }

    #[test]
    fn hflip_transform_is_an_involution() {
        let data: Vec<f32> = (0..2 * 3 * 4 * 4).map(|i| i as f32 * 0.01).collect();
        let x = Tensor::from_vec(data, &[2, 3, 4, 4]);
        let flipped = TtaView::HFlip.transform_batch(&x);
        let back = TtaView::HFlip.transform_batch(&flipped);
        assert_eq!(back.as_slice(), x.as_slice());
        assert_ne!(flipped.as_slice(), x.as_slice());
    }

    #[test]
    fn zoom_crop_magnifies_the_centre() {
        // A bright centre pixel spreads out under a 0.5 zoom.
        let mut data = vec![0.0f32; 8 * 8];
        data[4 * 8 + 4] = 1.0;
        let x = Tensor::from_vec(data, &[1, 1, 8, 8]);
        let zoomed = TtaView::ZoomCrop(0.5).transform_batch(&x);
        let bright = zoomed.as_slice().iter().filter(|&&v| v > 0.1).count();
        assert!(bright > 1, "zoom should spread the centre pixel, got {bright}");
    }

    #[test]
    fn untransform_inverts_the_view_geometry() {
        let b = NormBox::new(0.3, 0.6, 0.2, 0.1);
        // HFlip: mirrored centre.
        let f = TtaView::HFlip.untransform_box(&b);
        assert!((f.cx - 0.7).abs() < 1e-6 && (f.cy - 0.6).abs() < 1e-6);
        // ZoomCrop(c): a box at the view centre lands at the frame centre.
        let centre = NormBox::new(0.5, 0.5, 0.4, 0.4);
        let z = TtaView::ZoomCrop(0.75).untransform_box(&centre);
        assert!((z.cx - 0.5).abs() < 1e-6);
        assert!((z.w - 0.3).abs() < 1e-6, "width scales by the crop fraction");
    }

    #[test]
    fn merge_is_invariant_under_set_permutation() {
        let a = vec![det(0, 0.9, 0.5, 0.5, 0.2, 0.2), det(1, 0.4, 0.2, 0.2, 0.1, 0.1)];
        let b = vec![det(0, 0.8, 0.52, 0.5, 0.2, 0.2)];
        let c = vec![det(0, 0.9, 0.8, 0.8, 0.15, 0.15)];
        let m1 = merge_tta(vec![a.clone(), b.clone(), c.clone()], 0.45, NmsKind::Diou);
        let m2 = merge_tta(vec![c, a, b], 0.45, NmsKind::Diou);
        assert_eq!(m1, m2);
        assert!(!m1.is_empty());
    }

    #[test]
    fn merge_drops_nan_scores() {
        let bad = vec![det(0, f32::NAN, 0.5, 0.5, 0.2, 0.2)];
        let good = vec![det(0, 0.7, 0.5, 0.5, 0.2, 0.2)];
        let m = merge_tta(vec![bad, good], 0.45, NmsKind::Greedy);
        assert_eq!(m.len(), 1);
        assert!((m[0].score - 0.7).abs() < 1e-6);
    }
}
