//! YOLOv3-style detection heads (unchanged in YOLOv4, §III-B): per scale a
//! 3×3 conv followed by a linear 1×1 conv emitting
//! `anchors · (tx, ty, tw, th, obj, classes…)` channels.

use platter_tensor::nn::{Activation, ConvBlock};
use platter_tensor::ops::Conv2dSpec;
use platter_tensor::{Mode, Param, Trace};
use rand::Rng;

use crate::config::YoloConfig;
use crate::neck::NeckFeatures;

/// One detection head.
pub struct DetectionHead {
    expand: ConvBlock,
    project: ConvBlock,
}

impl DetectionHead {
    fn new<R: Rng + ?Sized>(name: &str, cin: usize, cfg: &YoloConfig, rng: &mut R) -> DetectionHead {
        DetectionHead {
            expand: ConvBlock::new(&format!("{name}.expand"), cin, cin * 2, 3, Conv2dSpec::same(3), Activation::Leaky, rng),
            // Raw logits: biased conv, no BN, linear activation.
            project: ConvBlock::without_bn(
                &format!("{name}.project"),
                cin * 2,
                cfg.head_channels(),
                1,
                Conv2dSpec::same(1),
                Activation::Linear,
                rng,
            ),
        }
    }

    fn trace<B: Trace>(&self, b: &mut B, x: B::Value, mode: Mode) -> B::Value {
        let h = self.expand.trace(b, x, mode);
        self.project.trace(b, h, mode)
    }

    fn parameters(&self) -> Vec<Param> {
        let mut p = self.expand.parameters();
        p.extend(self.project.parameters());
        p
    }
}

/// The three heads (strides 8, 16, 32).
pub struct YoloHeads {
    h3: DetectionHead,
    h4: DetectionHead,
    h5: DetectionHead,
}

impl YoloHeads {
    /// Build heads for `cfg` under serialization prefix `name`.
    pub fn new<R: Rng + ?Sized>(name: &str, cfg: &YoloConfig, rng: &mut R) -> YoloHeads {
        YoloHeads {
            h3: DetectionHead::new(&format!("{name}.s8"), cfg.channels(3) / 2, cfg, rng),
            h4: DetectionHead::new(&format!("{name}.s16"), cfg.channels(4) / 2, cfg, rng),
            h5: DetectionHead::new(&format!("{name}.s32"), cfg.channels(5) / 2, cfg, rng),
        }
    }

    /// Raw logits per scale, ordered `[stride8, stride16, stride32]`.
    pub fn trace<B: Trace>(&self, b: &mut B, f: &NeckFeatures<B::Value>, mode: Mode) -> [B::Value; 3] {
        [
            self.h3.trace(b, f.p3, mode),
            self.h4.trace(b, f.p4, mode),
            self.h5.trace(b, f.p5, mode),
        ]
    }

    /// All head parameters.
    pub fn parameters(&self) -> Vec<Param> {
        let mut p = self.h3.parameters();
        p.extend(self.h4.parameters());
        p.extend(self.h5.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::CspDarknet;
    use crate::neck::PanNeck;
    use platter_tensor::{Graph, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn head_shapes_match_grid_and_channels() {
        let cfg = YoloConfig::micro(10);
        let mut rng = StdRng::seed_from_u64(1);
        let bb = CspDarknet::new("backbone", &cfg, &mut rng);
        let neck = PanNeck::new("neck", &cfg, &mut rng);
        let heads = YoloHeads::new("head", &cfg, &mut rng);
        let mut g = Graph::inference();
        let x = g.leaf(Tensor::zeros(&[2, 3, 64, 64]));
        let f = bb.trace(&mut g, x, Mode::Infer);
        let n = neck.trace(&mut g, &f, Mode::Infer);
        let out = heads.trace(&mut g, &n, Mode::Infer);
        assert_eq!(g.shape(out[0]), &[2, 45, 8, 8]);
        assert_eq!(g.shape(out[1]), &[2, 45, 4, 4]);
        assert_eq!(g.shape(out[2]), &[2, 45, 2, 2]);
    }

    #[test]
    fn projection_is_biased_and_linear() {
        let cfg = YoloConfig::micro(3);
        let mut rng = StdRng::seed_from_u64(2);
        let heads = YoloHeads::new("head", &cfg, &mut rng);
        let names: Vec<String> = heads.parameters().iter().map(|p| p.name()).collect();
        assert!(names.contains(&"head.s8.project.conv.bias".to_string()));
        assert!(!names.iter().any(|n| n.contains("project.bn")));
    }
}
