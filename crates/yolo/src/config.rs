//! Model configuration: the full-scale YOLOv4 profile and CPU-scale
//! variants with identical topology (DESIGN.md §5).

use serde::{Deserialize, Serialize};

/// Channel widths of darknet's CSPDarknet53 at width multiplier 1.0.
pub const BASE_CHANNELS: [usize; 6] = [32, 64, 128, 256, 512, 1024];
/// CSP residual-block repeats per stage at depth multiplier 1.0.
pub const BASE_REPEATS: [usize; 5] = [1, 2, 8, 8, 4];

/// Detection strides of the three YOLO heads.
pub const STRIDES: [usize; 3] = [8, 16, 32];
/// Anchors per scale.
pub const ANCHORS_PER_SCALE: usize = 3;

/// A complete model configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct YoloConfig {
    /// Number of object classes (10 for IndianFood10).
    pub num_classes: usize,
    /// Square input edge; must be divisible by 32.
    pub input_size: usize,
    /// Channel width multiplier (1.0 = paper-scale CSPDarknet53).
    pub width: f32,
    /// Depth multiplier on CSP repeats (1.0 = paper-scale).
    pub depth: f32,
    /// Normalised `(w, h)` anchors, 3 per scale, small→large, matching
    /// [`STRIDES`] order.
    pub anchors: [[(f32, f32); ANCHORS_PER_SCALE]; 3],
}

/// Darknet's published YOLOv4 anchors (pixels at 416 input), normalised.
pub fn darknet_anchors() -> [[(f32, f32); 3]; 3] {
    let px = [
        [(12.0, 16.0), (19.0, 36.0), (40.0, 28.0)],
        [(36.0, 75.0), (76.0, 55.0), (72.0, 146.0)],
        [(142.0, 110.0), (192.0, 243.0), (459.0, 401.0)],
    ];
    px.map(|scale| scale.map(|(w, h): (f32, f32)| (w / 416.0, h / 416.0)))
}

/// Anchors tuned for the synthetic food scenes (dishes span roughly 15–70%
/// of the canvas). Used by the micro profile; experiments may re-estimate
/// them with k-means ([`crate::anchors::kmeans_anchors`]).
pub fn synthetic_anchors() -> [[(f32, f32); 3]; 3] {
    [
        [(0.16, 0.14), (0.22, 0.20), (0.28, 0.24)],
        [(0.33, 0.30), (0.42, 0.38), (0.52, 0.44)],
        [(0.58, 0.55), (0.68, 0.64), (0.82, 0.78)],
    ]
}

impl YoloConfig {
    /// Paper-scale YOLOv4: 416 px input, full width and depth.
    pub fn full(num_classes: usize) -> YoloConfig {
        YoloConfig { num_classes, input_size: 416, width: 1.0, depth: 1.0, anchors: darknet_anchors() }
    }

    /// The micro experiment profile: identical topology at width 0.25,
    /// single-repeat stages, 64 px input.
    pub fn micro(num_classes: usize) -> YoloConfig {
        YoloConfig { num_classes, input_size: 64, width: 0.25, depth: 0.0, anchors: synthetic_anchors() }
    }

    /// A middle profile for heavier CPU runs.
    pub fn small(num_classes: usize) -> YoloConfig {
        YoloConfig { num_classes, input_size: 96, width: 0.375, depth: 0.25, anchors: synthetic_anchors() }
    }

    /// Channel count of backbone level `i` (0 = stem … 5 = deepest), scaled
    /// by the width multiplier; always even and at least 4.
    pub fn channels(&self, i: usize) -> usize {
        let c = (BASE_CHANNELS[i] as f32 * self.width).round() as usize;
        (c.max(4) + 1) & !1
    }

    /// CSP repeats of stage `i` (0‥5), scaled by the depth multiplier;
    /// at least 1.
    pub fn repeats(&self, i: usize) -> usize {
        ((BASE_REPEATS[i] as f32 * self.depth).round() as usize).max(1)
    }

    /// Per-head output channels: `anchors · (5 + classes)`.
    pub fn head_channels(&self) -> usize {
        ANCHORS_PER_SCALE * (5 + self.num_classes)
    }

    /// Grid edge for scale `s` (0 = stride 8, 1 = 16, 2 = 32).
    pub fn grid_size(&self, s: usize) -> usize {
        self.input_size / STRIDES[s]
    }

    /// Validate invariants (input divisibility, anchor sanity).
    pub fn validate(&self) -> Result<(), String> {
        if !self.input_size.is_multiple_of(32) {
            return Err(format!("input_size {} not divisible by 32", self.input_size));
        }
        if self.num_classes == 0 {
            return Err("num_classes must be positive".into());
        }
        for scale in &self.anchors {
            for &(w, h) in scale {
                if !(0.0..=2.0).contains(&w) || !(0.0..=2.0).contains(&h) || w <= 0.0 || h <= 0.0 {
                    return Err(format!("anchor ({w}, {h}) out of range"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_profile_matches_darknet_dimensions() {
        let cfg = YoloConfig::full(10);
        assert_eq!(cfg.channels(0), 32);
        assert_eq!(cfg.channels(5), 1024);
        assert_eq!(cfg.repeats(2), 8);
        assert_eq!(cfg.head_channels(), 45);
        assert_eq!(cfg.grid_size(0), 52);
        assert_eq!(cfg.grid_size(2), 13);
        cfg.validate().unwrap();
    }

    #[test]
    fn micro_profile_is_small_but_valid() {
        let cfg = YoloConfig::micro(10);
        assert_eq!(cfg.channels(0), 8);
        assert_eq!(cfg.channels(5), 256);
        assert_eq!(cfg.repeats(2), 1);
        assert_eq!(cfg.grid_size(0), 8);
        assert_eq!(cfg.grid_size(2), 2);
        cfg.validate().unwrap();
    }

    #[test]
    fn channels_stay_even_and_floored() {
        let cfg = YoloConfig { width: 0.01, ..YoloConfig::micro(10) };
        for i in 0..6 {
            let c = cfg.channels(i);
            assert!(c >= 4 && c.is_multiple_of(2), "level {i}: {c}");
        }
    }

    #[test]
    fn validation_catches_bad_input() {
        let mut cfg = YoloConfig::micro(10);
        cfg.input_size = 100;
        assert!(cfg.validate().is_err());
        let mut cfg = YoloConfig::micro(10);
        cfg.num_classes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = YoloConfig::micro(10);
        cfg.anchors[0][0] = (-0.1, 0.2);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn darknet_anchors_are_normalised_ascending() {
        let a = darknet_anchors();
        let mut last_area = 0.0;
        for scale in &a {
            for &(w, h) in scale {
                assert!(w > 0.0 && w <= 1.2 && h > 0.0 && h <= 1.0);
                let area = w * h;
                assert!(area >= last_area * 0.8, "anchors roughly ascending");
                last_area = area;
            }
        }
    }
}
