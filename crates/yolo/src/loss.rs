//! The YOLOv4 training loss: CIoU box regression (with GIoU/DIoU/IoU
//! variants for the ablation), BCE objectness with an ignore mask, and
//! per-class BCE — all expressed in autograd ops so gradients flow from the
//! scalar loss to every parameter.

use platter_tensor::{Graph, Tensor, Var};

use crate::assign::ScaleTargets;
use crate::config::{YoloConfig, ANCHORS_PER_SCALE};

/// Box-regression variant (ablation axis; the paper's YOLOv4 uses CIoU).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoxLoss {
    /// Plain 1 − IoU.
    Iou,
    /// Generalised IoU.
    Giou,
    /// Distance IoU.
    Diou,
    /// Complete IoU (darknet's `iou_loss=ciou`).
    Ciou,
}

/// Loss term weights.
#[derive(Clone, Copy, Debug)]
pub struct LossWeights {
    /// Box regression weight.
    pub box_w: f32,
    /// Positive objectness weight (normalised by positives).
    pub obj_w: f32,
    /// Negative objectness weight (the negative BCE sum is normalised by
    /// the cell count). Calibrated on the micro profile: stronger values
    /// suppress positive confidence and collapse recall at conf 0.25.
    pub noobj_w: f32,
    /// Classification weight (normalised by positives).
    pub cls_w: f32,
}

impl Default for LossWeights {
    fn default() -> Self {
        LossWeights { box_w: 5.0, obj_w: 1.0, noobj_w: 2.0, cls_w: 1.0 }
    }
}

/// Scalar component values for logging.
#[derive(Clone, Copy, Debug, Default)]
pub struct LossParts {
    pub total: f32,
    pub box_loss: f32,
    pub obj_loss: f32,
    pub cls_loss: f32,
    /// Mean IoU of predictions at positive cells (training diagnostic).
    pub mean_iou: f32,
}

/// Pre-built constant tensors for decoding one scale's raw output.
struct DecodeConsts {
    /// `[1,1,2,g,g]`: channel 0 = column index, channel 1 = row index.
    grid: Tensor,
    /// `[1,a,2,1,1]`: anchor (w, h) per anchor slot.
    anchors: Tensor,
}

fn decode_consts(cfg: &YoloConfig, scale: usize) -> DecodeConsts {
    let g = cfg.grid_size(scale);
    let mut grid = vec![0.0f32; 2 * g * g];
    for row in 0..g {
        for col in 0..g {
            grid[row * g + col] = col as f32;
            grid[g * g + row * g + col] = row as f32;
        }
    }
    let a = ANCHORS_PER_SCALE;
    let mut anchors = vec![0.0f32; a * 2];
    for (i, &(w, h)) in cfg.anchors[scale].iter().enumerate() {
        anchors[i * 2] = w;
        anchors[i * 2 + 1] = h;
    }
    DecodeConsts {
        grid: Tensor::from_vec(grid, &[1, 1, 2, g, g]),
        anchors: Tensor::from_vec(anchors, &[1, a, 2, 1, 1]),
    }
}

/// Decoded predicted box components, each `[n,a,1,g,g]`, normalised.
pub(crate) struct DecodedBoxes {
    pub px: Var,
    pub py: Var,
    pub pw: Var,
    pub ph: Var,
}

/// Decode raw (reshaped) logits into normalised box coordinates:
/// `b_xy = (σ(t_xy) + grid) / g`, `b_wh = anchor · e^{t_wh}`.
pub(crate) fn decode_boxes(g: &mut Graph, raw: Var, cfg: &YoloConfig, scale: usize) -> DecodedBoxes {
    let consts = decode_consts(cfg, scale);
    let gsize = cfg.grid_size(scale) as f32;
    let txy = g.narrow(raw, 2, 0, 2);
    let twh = g.narrow(raw, 2, 2, 2);
    let sxy = g.sigmoid(txy);
    let grid = g.constant(consts.grid);
    let cell_xy = g.add(sxy, grid);
    let bxy = g.mul_scalar(cell_xy, 1.0 / gsize);
    let twh_c = g.clamp(twh, -9.0, 9.0);
    let ewh = g.exp(twh_c);
    let anchors = g.constant(consts.anchors);
    let bwh = g.mul(ewh, anchors);
    DecodedBoxes {
        px: g.narrow(bxy, 2, 0, 1),
        py: g.narrow(bxy, 2, 1, 1),
        pw: g.narrow(bwh, 2, 0, 1),
        ph: g.narrow(bwh, 2, 1, 1),
    }
}

/// Elementwise IoU-family score between predicted and target boxes
/// (centre/size form), returning the per-cell score tensor in the graph.
fn iou_family(g: &mut Graph, p: &DecodedBoxes, t: &DecodedBoxes, variant: BoxLoss) -> (Var, Var) {
    let half = 0.5f32;
    let scale_half = |g: &mut Graph, v: Var| g.mul_scalar(v, half);
    // Corners.
    let phw = scale_half(g, p.pw);
    let phh = scale_half(g, p.ph);
    let thw = scale_half(g, t.pw);
    let thh = scale_half(g, t.ph);
    let px0 = g.sub(p.px, phw);
    let px1 = g.add(p.px, phw);
    let py0 = g.sub(p.py, phh);
    let py1 = g.add(p.py, phh);
    let tx0 = g.sub(t.px, thw);
    let tx1 = g.add(t.px, thw);
    let ty0 = g.sub(t.py, thh);
    let ty1 = g.add(t.py, thh);

    // Intersection.
    let ix0 = g.max_elt(px0, tx0);
    let ix1 = g.min_elt(px1, tx1);
    let iy0 = g.max_elt(py0, ty0);
    let iy1 = g.min_elt(py1, ty1);
    let iw = g.sub(ix1, ix0);
    let iw = g.clamp(iw, 0.0, 4.0);
    let ih = g.sub(iy1, iy0);
    let ih = g.clamp(ih, 0.0, 4.0);
    let inter = g.mul(iw, ih);

    // Union.
    let pa = g.mul(p.pw, p.ph);
    let ta = g.mul(t.pw, t.ph);
    let sum_a = g.add(pa, ta);
    let union0 = g.sub(sum_a, inter);
    let union = g.add_scalar(union0, 1e-9);
    let iou = g.div(inter, union);

    let score = match variant {
        BoxLoss::Iou => iou,
        BoxLoss::Giou => {
            // Smallest enclosing box.
            let cx0 = g.min_elt(px0, tx0);
            let cx1 = g.max_elt(px1, tx1);
            let cy0 = g.min_elt(py0, ty0);
            let cy1 = g.max_elt(py1, ty1);
            let cw = g.sub(cx1, cx0);
            let ch = g.sub(cy1, cy0);
            let area_c0 = g.mul(cw, ch);
            let area_c = g.add_scalar(area_c0, 1e-9);
            let gap = g.sub(area_c, union);
            let frac = g.div(gap, area_c);
            g.sub(iou, frac)
        }
        BoxLoss::Diou | BoxLoss::Ciou => {
            // Centre distance over enclosing diagonal.
            let cx0 = g.min_elt(px0, tx0);
            let cx1 = g.max_elt(px1, tx1);
            let cy0 = g.min_elt(py0, ty0);
            let cy1 = g.max_elt(py1, ty1);
            let cw = g.sub(cx1, cx0);
            let ch = g.sub(cy1, cy0);
            let cw2 = g.square(cw);
            let ch2 = g.square(ch);
            let diag0 = g.add(cw2, ch2);
            let diag = g.add_scalar(diag0, 1e-9);
            let dx = g.sub(p.px, t.px);
            let dy = g.sub(p.py, t.py);
            let dx2 = g.square(dx);
            let dy2 = g.square(dy);
            let d2 = g.add(dx2, dy2);
            let penalty = g.div(d2, diag);
            let diou = g.sub(iou, penalty);
            if variant == BoxLoss::Diou {
                diou
            } else {
                // Aspect-ratio term v with detached α = v / (1 − IoU + v).
                let teps = g.add_scalar(t.ph, 1e-9);
                let peps = g.add_scalar(p.ph, 1e-9);
                let tr = g.div(t.pw, teps);
                let pr = g.div(p.pw, peps);
                let at = g.atan(tr);
                let ap = g.atan(pr);
                let dv = g.sub(at, ap);
                let dv2 = g.square(dv);
                let v = g.mul_scalar(dv2, 4.0 / (std::f32::consts::PI * std::f32::consts::PI));
                // α computed from current values, then treated as constant.
                let v_val = g.value(v).clone();
                let iou_val = g.value(iou).clone();
                let alpha_val = v_val.zip_map(&iou_val, |vv, ii| vv / (1.0 - ii + vv + 1e-9));
                let alpha = g.constant(alpha_val);
                let av = g.mul(alpha, v);
                g.sub(diou, av)
            }
        }
    };
    (score, iou)
}

/// Compute the full YOLO loss over the three scales.
///
/// Returns the scalar loss var plus logged component values.
pub fn yolo_loss(
    g: &mut Graph,
    heads: &[Var; 3],
    targets: &[ScaleTargets; 3],
    cfg: &YoloConfig,
    variant: BoxLoss,
    weights: LossWeights,
) -> (Var, LossParts) {
    let a = ANCHORS_PER_SCALE;
    let c = cfg.num_classes;
    let mut total: Option<Var> = None;
    let mut parts = LossParts::default();
    let mut iou_sum = 0.0f32;
    let mut iou_count = 0usize;

    for s in 0..3 {
        let gsize = cfg.grid_size(s);
        let n = g.shape(heads[s])[0];
        let raw = g.reshape(heads[s], &[n, a, 5 + c, gsize, gsize]);
        let t = &targets[s];
        let num_pos = t.num_pos.max(1) as f32;
        let cells = (n * a * gsize * gsize) as f32;

        // --- box regression on positive cells ---
        let pred = decode_boxes(g, raw, cfg, s);
        let tbox = g.constant(t.tbox.clone());
        let tgt = DecodedBoxes {
            px: g.narrow(tbox, 2, 0, 1),
            py: g.narrow(tbox, 2, 1, 1),
            pw: g.narrow(tbox, 2, 2, 1),
            ph: g.narrow(tbox, 2, 3, 1),
        };
        let (score, iou) = iou_family(g, &pred, &tgt, variant);
        let one_minus = g.neg(score);
        let one_minus = g.add_scalar(one_minus, 1.0);
        let obj_mask = g.constant(t.obj.clone());
        let masked = g.mul(one_minus, obj_mask);
        let box_sum = g.sum_all(masked);
        let box_term = g.mul_scalar(box_sum, weights.box_w / num_pos);

        // IoU diagnostic at positives (values only).
        if t.num_pos > 0 {
            let iou_vals = g.value(iou).clone();
            let mask_vals = &t.obj;
            iou_sum += iou_vals
                .as_slice()
                .iter()
                .zip(mask_vals.as_slice())
                .map(|(i, m)| i * m)
                .sum::<f32>();
            iou_count += t.num_pos;
        }

        // --- objectness ---
        let tobj_logits = g.narrow(raw, 2, 4, 1);
        let obj_bce = g.bce_with_logits(tobj_logits, &t.obj);
        let obj_pos = g.mul(obj_bce, obj_mask);
        let obj_pos_sum = g.sum_all(obj_pos);
        let obj_pos_term = g.mul_scalar(obj_pos_sum, weights.obj_w / num_pos);
        let noobj_mask = g.constant(t.noobj.clone());
        let obj_neg = g.mul(obj_bce, noobj_mask);
        let obj_neg_sum = g.sum_all(obj_neg);
        let obj_neg_term = g.mul_scalar(obj_neg_sum, weights.noobj_w / cells);
        let obj_term = g.add(obj_pos_term, obj_neg_term);

        // --- classification (independent logistic per class, as YOLOv3+) ---
        let cls_logits = g.narrow(raw, 2, 5, c);
        let cls_bce = g.bce_with_logits(cls_logits, &t.tcls);
        let cls_masked = g.mul(cls_bce, obj_mask); // broadcast over k
        let cls_sum = g.sum_all(cls_masked);
        let cls_term = g.mul_scalar(cls_sum, weights.cls_w / num_pos);

        parts.box_loss += g.value(box_term).item();
        parts.obj_loss += g.value(obj_term).item();
        parts.cls_loss += g.value(cls_term).item();

        let scale_loss0 = g.add(box_term, obj_term);
        let scale_loss = g.add(scale_loss0, cls_term);
        total = Some(match total {
            Some(acc) => g.add(acc, scale_loss),
            None => scale_loss,
        });
    }

    let total = total.expect("three scales");
    parts.total = g.value(total).item();
    parts.mean_iou = if iou_count > 0 { iou_sum / iou_count as f32 } else { 0.0 };
    (total, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::build_targets;
    use crate::model::Yolov4;
    use platter_dataset::Annotation;
    use platter_imaging::NormBox;
    use platter_tensor::{Sgd, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_batch() -> (Tensor, Vec<Vec<Annotation>>) {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[2, 3, 64, 64], &mut rng).map(|v| v * 0.1 + 0.5);
        let anns = vec![
            vec![Annotation { class: 2, bbox: NormBox::new(0.4, 0.5, 0.3, 0.35) }],
            vec![
                Annotation { class: 0, bbox: NormBox::new(0.3, 0.3, 0.25, 0.2) },
                Annotation { class: 7, bbox: NormBox::new(0.7, 0.7, 0.4, 0.4) },
            ],
        ];
        (x, anns)
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let cfg = YoloConfig::micro(10);
        let model = Yolov4::new(cfg.clone(), 2);
        let (x, anns) = sample_batch();
        let targets = build_targets(&cfg, &anns);
        let mut g = Graph::new();
        let xv = g.leaf(x);
        let heads = model.forward(&mut g, xv, true);
        let (loss, parts) = yolo_loss(&mut g, &heads, &targets, &cfg, BoxLoss::Ciou, LossWeights::default());
        let v = g.value(loss).item();
        assert!(v.is_finite() && v > 0.0, "loss {v}");
        assert!(parts.box_loss >= 0.0 && parts.obj_loss > 0.0 && parts.cls_loss >= 0.0);
        assert!((parts.total - v).abs() < 1e-4);
    }

    #[test]
    fn all_variants_backprop() {
        let cfg = YoloConfig::micro(4);
        let (x, mut anns) = sample_batch();
        for a in &mut anns {
            for ann in a.iter_mut() {
                ann.class %= 4;
            }
        }
        let targets = build_targets(&cfg, &anns);
        for variant in [BoxLoss::Iou, BoxLoss::Giou, BoxLoss::Diou, BoxLoss::Ciou] {
            let model = Yolov4::new(cfg.clone(), 3);
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let heads = model.forward(&mut g, xv, true);
            let (loss, _) = yolo_loss(&mut g, &heads, &targets, &cfg, variant, LossWeights::default());
            g.backward(loss);
            let grads_nonzero = model
                .parameters()
                .iter()
                .filter(|p| p.grad().as_slice().iter().any(|&v| v != 0.0))
                .count();
            assert!(grads_nonzero > 10, "{variant:?}: only {grads_nonzero} params got gradient");
        }
    }

    #[test]
    fn perfect_prediction_has_near_zero_box_loss() {
        // Plant raw logits that decode exactly to the GT box at *every*
        // positive cell (multi-anchor assignment creates several), then
        // check 1 − CIoU ≈ 0 and mean IoU ≈ 1.
        let cfg = YoloConfig::micro(2);
        let gt = NormBox::new(0.5, 0.5, 0.42, 0.38);
        let anns = vec![vec![Annotation { class: 1, bbox: gt }]];
        let targets = build_targets(&cfg, &anns);

        let mut raws: Vec<Tensor> = (0..3)
            .map(|s| Tensor::full(&[1, 3 * 7, cfg.grid_size(s), cfg.grid_size(s)], -12.0))
            .collect();
        for s in 0..3 {
            let gsz = cfg.grid_size(s);
            let obj = targets[s].obj.clone();
            for anc in 0..3 {
                for row in 0..gsz {
                    for col in 0..gsz {
                        let oi = ((anc * gsz) + row) * gsz + col;
                        if obj.as_slice()[oi] != 1.0 {
                            continue;
                        }
                        let d = raws[s].as_mut_slice();
                        let idx = |k: usize| ((anc * 7 + k) * gsz + row) * gsz + col;
                        // GT centre 0.5 lands exactly on a cell boundary for
                        // every even grid → fractional offset 0 → σ(t)=0,
                        // approximated by a very negative logit.
                        d[idx(0)] = -12.0;
                        d[idx(1)] = -12.0;
                        d[idx(2)] = (gt.w / cfg.anchors[s][anc].0).ln();
                        d[idx(3)] = (gt.h / cfg.anchors[s][anc].1).ln();
                        d[idx(4)] = 10.0;
                    }
                }
            }
        }
        let mut g = Graph::new();
        let h0 = g.leaf(raws[0].clone());
        let h1 = g.leaf(raws[1].clone());
        let h2 = g.leaf(raws[2].clone());
        let (_, parts) = yolo_loss(&mut g, &[h0, h1, h2], &targets, &cfg, BoxLoss::Ciou, LossWeights::default());
        assert!(parts.mean_iou > 0.95, "mean IoU {}", parts.mean_iou);
        assert!(parts.box_loss < 0.2, "box loss {}", parts.box_loss);
    }

    #[test]
    fn loss_decreases_when_overfitting_one_batch() {
        let cfg = YoloConfig::micro(4);
        let model = Yolov4::new(cfg.clone(), 5);
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::randn(&[1, 3, 64, 64], &mut rng).map(|v| v * 0.2 + 0.5);
        let anns = vec![vec![Annotation { class: 1, bbox: NormBox::new(0.5, 0.5, 0.4, 0.4) }]];
        let targets = build_targets(&cfg, &anns);
        let mut opt = Sgd::new(model.parameters(), 0.9, 0.0);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..80 {
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let heads = model.forward(&mut g, xv, true);
            let (loss, parts) = yolo_loss(&mut g, &heads, &targets, &cfg, BoxLoss::Ciou, LossWeights::default());
            g.backward(loss);
            platter_tensor::clip_global_norm(&model.parameters(), 10.0);
            opt.step(0.01);
            opt.zero_grad();
            if i == 0 {
                first = parts.total;
            }
            last = parts.total;
            assert!(parts.total.is_finite(), "loss diverged at step {i}");
        }
        assert!(last < first * 0.7, "loss did not drop: {first} → {last}");
    }
}
