//! The training loop: darknet-style SGD with burn-in + step decay,
//! gradient clipping, optional backbone freezing for the first iterations
//! (the fine-tuning phase of transfer learning), and periodic checkpoints
//! for the Table II iteration sweep.
//!
//! The loop is factored as a resumable [`Trainer`]: one [`Trainer::step`]
//! per darknet iteration, with [`Trainer::snapshot`]/[`Trainer::restore`]
//! capturing the *complete* run state (parameter values, SGD momentum
//! buffers, schedule position, loader stream position). A trainer restored
//! from a snapshot continues on the exact trajectory of an uninterrupted
//! run — the property the fault-tolerant runtime (`crate::runtime`) builds
//! its crash recovery and divergence rollback on. The [`train`] function
//! remains the simple fire-and-forget entry point.

use std::sync::Arc;
use std::time::Instant;

use platter_dataset::{BatchLoader, LoaderConfig, LoaderState, SyntheticDataset};
use platter_obs::{exp_bounds, Counter, Histogram, MetricsRegistry};
use platter_tensor::{clip_global_norm, Graph, LrSchedule, Param, Sgd, Tensor};

use crate::assign::build_targets;
use crate::loss::{yolo_loss, BoxLoss, LossParts, LossWeights};
use crate::model::Yolov4;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Total darknet-style iterations (batches).
    pub iterations: usize,
    /// Images per batch.
    pub batch_size: usize,
    /// Peak learning rate (after burn-in).
    pub lr: f32,
    /// SGD momentum (darknet: 0.949).
    pub momentum: f32,
    /// L2 weight decay (darknet: 0.0005).
    pub weight_decay: f32,
    /// Box-regression variant.
    pub box_loss: BoxLoss,
    /// Loss term weights.
    pub weights: LossWeights,
    /// Keep the backbone frozen for this many initial iterations
    /// (transfer-learning fine-tuning); 0 trains everything from the start.
    pub freeze_backbone_iters: usize,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
    /// Mosaic probability for the loader.
    pub mosaic_prob: f64,
    /// RNG seed for the loader.
    pub seed: u64,
}

impl TrainConfig {
    /// Sensible micro-profile defaults for `iterations` iterations.
    pub fn micro(iterations: usize) -> TrainConfig {
        TrainConfig {
            iterations,
            batch_size: 4,
            lr: 2e-3,
            momentum: 0.9,
            weight_decay: 5e-4,
            box_loss: BoxLoss::Ciou,
            weights: LossWeights::default(),
            freeze_backbone_iters: 0,
            clip_norm: 100.0,
            mosaic_prob: 0.15,
            seed: 0xF00D,
        }
    }
}

/// Training-loop handles into a shared [`MetricsRegistry`], registered once
/// via [`TrainMetrics::register`] and updated lock-free from inside
/// [`Trainer::try_step`]. Time histograms are in milliseconds; the loss
/// histogram records the total loss (non-finite losses land in its
/// `dropped` count rather than poisoning the sum).
#[derive(Clone)]
pub struct TrainMetrics {
    /// Wall time of a whole step.
    pub step_ms: Arc<Histogram>,
    /// Data loading + target building portion.
    pub data_ms: Arc<Histogram>,
    /// Forward + loss portion.
    pub forward_ms: Arc<Histogram>,
    /// Backward (gradient) portion.
    pub backward_ms: Arc<Histogram>,
    /// Total loss per step.
    pub loss: Arc<Histogram>,
    /// Applied steps.
    pub steps: Arc<Counter>,
    /// Steps rejected by the guard (divergence-guard trips).
    pub steps_rejected: Arc<Counter>,
}

impl TrainMetrics {
    /// Register (or re-acquire) the `train.*` metrics in `registry`.
    pub fn register(registry: &MetricsRegistry) -> TrainMetrics {
        // 0.5 ms … ~16 s covers micro-profile CI steps and real training.
        let time = exp_bounds(0.5, 2.0, 15);
        let loss = exp_bounds(0.0625, 2.0, 16);
        TrainMetrics {
            step_ms: registry.histogram("train.step_ms", &time),
            data_ms: registry.histogram("train.data_ms", &time),
            forward_ms: registry.histogram("train.forward_ms", &time),
            backward_ms: registry.histogram("train.backward_ms", &time),
            loss: registry.histogram("train.loss", &loss),
            steps: registry.counter("train.steps"),
            steps_rejected: registry.counter("train.steps_rejected"),
        }
    }
}

/// One logged training step.
#[derive(Clone, Copy, Debug)]
pub struct TrainRecord {
    /// Iteration index (1-based, like darknet's logs).
    pub iteration: usize,
    /// Loss components at this step.
    pub loss: LossParts,
    /// Learning rate used.
    pub lr: f32,
    /// Pre-clip global gradient norm (diagnostics).
    pub grad_norm: f32,
}

/// The complete state of a training run at an iteration boundary.
///
/// Everything needed to continue the run on the exact trajectory an
/// uninterrupted run would have taken: parameter values, SGD momentum
/// buffers, the learning-rate retry factor, and the data-loader stream
/// position (epoch, cursor, shuffled order, RNG state). Serialized to disk
/// by `crate::runtime`.
#[derive(Clone, Debug)]
pub struct RunState {
    /// Completed iterations (0-based count; the next step is this index).
    pub iteration: usize,
    /// Multiplicative learning-rate factor (cut on divergence rollbacks).
    pub lr_factor: f32,
    /// `(name, value)` for every model parameter.
    pub model: Vec<(String, Tensor)>,
    /// `(name, momentum buffer)` for every optimizer slot.
    pub velocity: Vec<(String, Tensor)>,
    /// Data-loader stream position.
    pub loader: LoaderState,
}

/// A resumable darknet-style training loop over one model + dataset subset.
pub struct Trainer<'a> {
    model: &'a Yolov4,
    cfg: TrainConfig,
    loader: BatchLoader<'a>,
    schedule: LrSchedule,
    opt: Sgd,
    iteration: usize,
    lr_factor: f32,
    metrics: Option<TrainMetrics>,
}

impl<'a> Trainer<'a> {
    /// Set up a fresh run (iteration 0) of `cfg` on `train_indices`.
    pub fn new(
        model: &'a Yolov4,
        dataset: &'a SyntheticDataset,
        train_indices: &[usize],
        cfg: &TrainConfig,
    ) -> Trainer<'a> {
        let input = model.config.input_size;
        let mut loader_cfg = LoaderConfig::train(cfg.batch_size, input, cfg.seed);
        loader_cfg.mosaic_prob = cfg.mosaic_prob;
        let loader = BatchLoader::new(dataset, train_indices, loader_cfg);
        let schedule = LrSchedule::darknet(cfg.lr, cfg.iterations);
        let opt = Sgd::new(model.parameters(), cfg.momentum, cfg.weight_decay);
        Trainer { model, cfg: cfg.clone(), loader, schedule, opt, iteration: 0, lr_factor: 1.0, metrics: None }
    }

    /// Emit per-step metrics (timings, loss, guard trips) through `metrics`.
    /// Without this the trainer records nothing — the metrics path costs a
    /// handful of `Instant` reads and relaxed atomics per step when on.
    pub fn attach_metrics(&mut self, metrics: TrainMetrics) {
        self.metrics = Some(metrics);
    }

    /// Completed iterations (the next step runs this 0-based index).
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Whether the configured iteration budget is exhausted.
    pub fn is_done(&self) -> bool {
        self.iteration >= self.cfg.iterations
    }

    /// The model being trained.
    pub fn model(&self) -> &Yolov4 {
        self.model
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Current learning-rate factor (1.0 unless divergence rollbacks cut it).
    pub fn lr_factor(&self) -> f32 {
        self.lr_factor
    }

    /// Scale all future learning rates by `factor` (used by the runtime's
    /// divergence guard to cool the run down after a rollback).
    pub fn set_lr_factor(&mut self, factor: f32) {
        self.lr_factor = factor;
    }

    /// One training iteration; always applies the update.
    pub fn step(&mut self) -> TrainRecord {
        self.try_step(|_| {}, |_| true).0
    }

    /// One training iteration with seams for the fault-tolerant runtime.
    ///
    /// `grad_hook` runs after backward and before clipping — the runtime's
    /// fault-injection harness uses it to corrupt gradients on schedule.
    /// `guard` inspects the candidate record; returning `false` rejects the
    /// step: the optimizer update is *not* applied and the iteration counter
    /// does not advance (the loader has consumed the batch, but a rejection
    /// is always followed by [`Trainer::restore`], which rewinds it).
    pub fn try_step(
        &mut self,
        grad_hook: impl FnOnce(&[Param]),
        guard: impl FnOnce(&TrainRecord) -> bool,
    ) -> (TrainRecord, bool) {
        if self.cfg.freeze_backbone_iters > 0 {
            self.model.set_backbone_frozen(self.iteration < self.cfg.freeze_backbone_iters);
        }
        let step_start = Instant::now();
        let batch = self.loader.next_batch();
        let x = Tensor::from_vec(batch.data, &batch.shape);
        let targets = build_targets(&self.model.config, &batch.annotations);
        let data_done = Instant::now();

        let mut g = Graph::new();
        let xv = g.leaf(x);
        let heads = self.model.forward(&mut g, xv, true);
        let (loss, parts) =
            yolo_loss(&mut g, &heads, &targets, &self.model.config, self.cfg.box_loss, self.cfg.weights);
        let forward_done = Instant::now();
        g.backward(loss);
        let backward_done = Instant::now();
        grad_hook(self.opt.params());
        let grad_norm = clip_global_norm(self.opt.params(), self.cfg.clip_norm);
        let lr = self.schedule.lr_at(self.iteration) * self.lr_factor;

        let record = TrainRecord { iteration: self.iteration + 1, loss: parts, lr, grad_norm };
        let apply = guard(&record);
        if apply {
            self.opt.step(lr);
            self.iteration += 1;
        }
        self.opt.zero_grad();
        if let Some(m) = &self.metrics {
            let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
            m.data_ms.record(ms(data_done - step_start));
            m.forward_ms.record(ms(forward_done - data_done));
            m.backward_ms.record(ms(backward_done - forward_done));
            m.step_ms.record(ms(step_start.elapsed()));
            m.loss.record(f64::from(record.loss.total));
            if apply { m.steps.inc() } else { m.steps_rejected.inc() }
        }
        (record, apply)
    }

    /// Capture the complete run state at the current iteration boundary.
    pub fn snapshot(&self) -> RunState {
        RunState {
            iteration: self.iteration,
            lr_factor: self.lr_factor,
            model: self
                .model
                .parameters()
                .iter()
                .map(|p| (p.name(), p.value().clone()))
                .collect(),
            velocity: self.opt.export_velocity(),
            loader: self.loader.state(),
        }
    }

    /// Restore a state captured by [`Trainer::snapshot`] (possibly by a
    /// different process). On success the trainer continues exactly as the
    /// snapshotted run would have; on any mismatch the trainer is unusable
    /// for resume and the error describes what didn't line up.
    pub fn restore(&mut self, state: &RunState) -> Result<(), String> {
        if state.iteration > self.cfg.iterations {
            return Err(format!(
                "snapshot is {} iterations in, but this run is configured for {}",
                state.iteration, self.cfg.iterations
            ));
        }
        let by_name: std::collections::HashMap<&str, &Tensor> =
            state.model.iter().map(|(n, t)| (n.as_str(), t)).collect();
        let params = self.model.parameters();
        // Validate everything before mutating anything.
        for p in &params {
            let name = p.name();
            let t = by_name
                .get(name.as_str())
                .ok_or_else(|| format!("snapshot is missing parameter {name}"))?;
            if t.shape() != p.value().shape() {
                return Err(format!(
                    "snapshot shape mismatch for {name}: {:?} vs {:?}",
                    t.shape(),
                    p.value().shape()
                ));
            }
        }
        self.opt.import_velocity(&state.velocity)?;
        self.loader.restore(&state.loader)?;
        for p in &params {
            p.set_value(by_name[p.name().as_str()].clone());
        }
        self.iteration = state.iteration;
        self.lr_factor = state.lr_factor;
        if self.cfg.freeze_backbone_iters > 0 {
            self.model.set_backbone_frozen(self.iteration < self.cfg.freeze_backbone_iters);
        }
        Ok(())
    }
}

/// Train `model` on `train_indices` of `dataset`.
///
/// `checkpoint_every` > 0 invokes `on_checkpoint(iteration, model)` at that
/// cadence (and at the final iteration) — the hook the Table II sweep uses
/// to evaluate intermediate models. For crash-safe training with on-disk
/// checkpoints and divergence recovery, use `crate::runtime` instead.
#[allow(clippy::too_many_arguments)]
pub fn train(
    model: &Yolov4,
    dataset: &SyntheticDataset,
    train_indices: &[usize],
    cfg: &TrainConfig,
    checkpoint_every: usize,
    mut on_checkpoint: impl FnMut(usize, &Yolov4),
    mut on_log: impl FnMut(&TrainRecord),
) -> Vec<TrainRecord> {
    let mut trainer = Trainer::new(model, dataset, train_indices, cfg);
    let mut history = Vec::with_capacity(cfg.iterations);
    while !trainer.is_done() {
        let record = trainer.step();
        on_log(&record);
        history.push(record);
        let done = record.iteration == cfg.iterations;
        if checkpoint_every > 0 && (record.iteration.is_multiple_of(checkpoint_every) || done) {
            on_checkpoint(record.iteration, model);
        }
    }
    if cfg.freeze_backbone_iters > 0 {
        model.set_backbone_frozen(false);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::YoloConfig;
    use platter_dataset::{ClassSet, DatasetSpec, Split};

    fn tiny_dataset() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 16, 64, 3))
    }


    #[test]
    fn short_run_reduces_loss_and_checkpoints() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let model = Yolov4::new(YoloConfig::micro(10), 9);
        let mut cfg = TrainConfig::micro(12);
        cfg.batch_size = 2;
        cfg.mosaic_prob = 0.0;
        cfg.seed = 11;
        let mut checkpoints = Vec::new();
        let history = train(
            &model,
            &ds,
            &split.train,
            &cfg,
            6,
            |it, _| checkpoints.push(it),
            |_| {},
        );
        assert_eq!(history.len(), 12);
        assert_eq!(checkpoints, vec![6, 12]);
        assert!(history.iter().all(|r| r.loss.total.is_finite()));
        let first: f32 = history[..3].iter().map(|r| r.loss.total).sum();
        let last: f32 = history[9..].iter().map(|r| r.loss.total).sum();
        assert!(last < first, "loss should trend down: {first} → {last}");
    }

    #[test]
    fn burn_in_ramps_lr() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let model = Yolov4::new(YoloConfig::micro(10), 10);
        let mut cfg = TrainConfig::micro(25);
        cfg.batch_size = 1;
        cfg.mosaic_prob = 0.0;
        let history = train(&model, &ds, &split.train, &cfg, 0, |_, _| {}, |_| {});
        assert!(history[0].lr < history[19].lr, "burn-in must ramp LR");
    }

    #[test]
    fn freezing_keeps_backbone_constant_then_unfreezes() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let model = Yolov4::new(YoloConfig::micro(10), 11);
        let stem_before = model.backbone_parameters()[0].value();
        let mut cfg = TrainConfig::micro(6);
        cfg.batch_size = 1;
        cfg.freeze_backbone_iters = 3;
        cfg.mosaic_prob = 0.0;

        // Hook at iteration 3: the stem must still equal its init.
        let stem_ref = stem_before.clone();
        train(
            &model,
            &ds,
            &split.train,
            &cfg,
            3,
            move |it, m| {
                if it == 3 {
                    let now = m.backbone_parameters()[0].value();
                    assert_eq!(now.as_slice(), stem_ref.as_slice(), "backbone moved while frozen");
                }
            },
            |_| {},
        );
        // After unfreezing (iters 4–6) the stem should have moved.
        let stem_after = model.backbone_parameters()[0].value();
        assert_ne!(stem_before.as_slice(), stem_after.as_slice(), "backbone never unfroze");
    }

    #[test]
    fn snapshot_restore_resumes_exact_trajectory() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let mut cfg = TrainConfig::micro(10);
        cfg.batch_size = 2;
        cfg.mosaic_prob = 0.25; // exercise the loader RNG path too

        // Uninterrupted run.
        let model_a = Yolov4::new(YoloConfig::micro(10), 21);
        let mut full = Trainer::new(&model_a, &ds, &split.train, &cfg);
        let mut full_hist = Vec::new();
        let mut mid = None;
        while !full.is_done() {
            if full.iteration() == 4 {
                mid = Some(full.snapshot());
            }
            full_hist.push(full.step());
        }
        let mid = mid.unwrap();

        // A second model restored from the mid-run snapshot.
        let model_b = Yolov4::new(YoloConfig::micro(10), 99); // different init, fully overwritten
        let mut resumed = Trainer::new(&model_b, &ds, &split.train, &cfg);
        resumed.restore(&mid).unwrap();
        assert_eq!(resumed.iteration(), 4);
        let mut resumed_hist = Vec::new();
        while !resumed.is_done() {
            resumed_hist.push(resumed.step());
        }

        assert_eq!(resumed_hist.len(), 6);
        for (a, b) in full_hist[4..].iter().zip(&resumed_hist) {
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(a.loss.total.to_bits(), b.loss.total.to_bits(), "iteration {}", a.iteration);
            assert_eq!(a.grad_norm.to_bits(), b.grad_norm.to_bits());
        }
        // Final weights must agree bit-for-bit as well.
        assert_eq!(model_a.save().as_ref() as &[u8], model_b.save().as_ref() as &[u8]);
    }

    #[test]
    fn restore_rejects_mismatched_snapshots() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let cfg = TrainConfig::micro(4);
        let model = Yolov4::new(YoloConfig::micro(10), 3);
        let mut trainer = Trainer::new(&model, &ds, &split.train, &cfg);
        let mut snap = trainer.snapshot();

        // Iteration beyond the configured budget.
        snap.iteration = 99;
        assert!(trainer.restore(&snap).is_err());
        snap.iteration = 0;

        // Missing parameter.
        let removed = snap.model.remove(0);
        assert!(trainer.restore(&snap).is_err());
        snap.model.insert(0, removed);

        // Wrong shape.
        let (name, _) = snap.model[0].clone();
        snap.model[0] = (name, Tensor::zeros(&[1, 2, 3]));
        assert!(trainer.restore(&snap).is_err());
    }

    #[test]
    fn metrics_record_phase_split_and_guard_trips() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let mut cfg = TrainConfig::micro(3);
        cfg.batch_size = 1;
        cfg.mosaic_prob = 0.0;
        let model = Yolov4::new(YoloConfig::micro(10), 5);
        let mut trainer = Trainer::new(&model, &ds, &split.train, &cfg);
        let registry = MetricsRegistry::new();
        trainer.attach_metrics(TrainMetrics::register(&registry));

        trainer.step();
        trainer.step();
        trainer.try_step(|_| {}, |_| false); // guard rejection

        let snap = registry.snapshot();
        let counter = |n: &str| snap.counters.iter().find(|c| c.name == n).unwrap().value;
        assert_eq!(counter("train.steps"), 2);
        assert_eq!(counter("train.steps_rejected"), 1);
        let hist = |n: &str| snap.histograms.iter().find(|h| h.name == n).unwrap();
        assert_eq!(hist("train.step_ms").count, 3);
        assert_eq!(hist("train.loss").count, 3);
        // Phases are timed inside the step, so their sum cannot exceed it.
        let parts = hist("train.data_ms").sum + hist("train.forward_ms").sum + hist("train.backward_ms").sum;
        assert!(parts <= hist("train.step_ms").sum + 1e-6, "{parts} vs {}", hist("train.step_ms").sum);
        assert!(hist("train.step_ms").sum > 0.0);
    }

    #[test]
    fn guarded_step_rejection_leaves_iteration_unchanged() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let cfg = TrainConfig::micro(4);
        let model = Yolov4::new(YoloConfig::micro(10), 3);
        let mut trainer = Trainer::new(&model, &ds, &split.train, &cfg);
        let before = trainer.snapshot();
        let (record, applied) = trainer.try_step(|_| {}, |_| false);
        assert!(!applied);
        assert!(record.loss.total.is_finite());
        assert_eq!(trainer.iteration(), 0);
        // Learned weights untouched by the rejected step. (BatchNorm running
        // stats do move during the forward pass — that's why the runtime
        // always follows a rejection with a restore.)
        let after = trainer.snapshot();
        for ((n1, t1), (_, t2)) in before.model.iter().zip(&after.model) {
            if n1.contains("running_") {
                continue;
            }
            assert_eq!(t1.as_slice(), t2.as_slice(), "{n1} changed despite rejection");
        }
        // And a restore rewinds even the running stats.
        trainer.restore(&before).unwrap();
        let rewound = trainer.snapshot();
        for ((n1, t1), (_, t2)) in before.model.iter().zip(&rewound.model) {
            assert_eq!(t1.as_slice(), t2.as_slice(), "{n1} not rewound by restore");
        }
    }
}
