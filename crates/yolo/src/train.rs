//! The training loop: darknet-style SGD with burn-in + step decay,
//! gradient clipping, optional backbone freezing for the first iterations
//! (the fine-tuning phase of transfer learning), and periodic checkpoints
//! for the Table II iteration sweep.

use platter_dataset::{BatchLoader, LoaderConfig, SyntheticDataset};
use platter_tensor::{clip_global_norm, Graph, LrSchedule, Sgd, Tensor};

use crate::assign::build_targets;
use crate::loss::{yolo_loss, BoxLoss, LossParts, LossWeights};
use crate::model::Yolov4;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Total darknet-style iterations (batches).
    pub iterations: usize,
    /// Images per batch.
    pub batch_size: usize,
    /// Peak learning rate (after burn-in).
    pub lr: f32,
    /// SGD momentum (darknet: 0.949).
    pub momentum: f32,
    /// L2 weight decay (darknet: 0.0005).
    pub weight_decay: f32,
    /// Box-regression variant.
    pub box_loss: BoxLoss,
    /// Loss term weights.
    pub weights: LossWeights,
    /// Keep the backbone frozen for this many initial iterations
    /// (transfer-learning fine-tuning); 0 trains everything from the start.
    pub freeze_backbone_iters: usize,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
    /// Mosaic probability for the loader.
    pub mosaic_prob: f64,
    /// RNG seed for the loader.
    pub seed: u64,
}

impl TrainConfig {
    /// Sensible micro-profile defaults for `iterations` iterations.
    pub fn micro(iterations: usize) -> TrainConfig {
        TrainConfig {
            iterations,
            batch_size: 4,
            lr: 2e-3,
            momentum: 0.9,
            weight_decay: 5e-4,
            box_loss: BoxLoss::Ciou,
            weights: LossWeights::default(),
            freeze_backbone_iters: 0,
            clip_norm: 100.0,
            mosaic_prob: 0.15,
            seed: 0xF00D,
        }
    }
}

/// One logged training step.
#[derive(Clone, Copy, Debug)]
pub struct TrainRecord {
    /// Iteration index (1-based, like darknet's logs).
    pub iteration: usize,
    /// Loss components at this step.
    pub loss: LossParts,
    /// Learning rate used.
    pub lr: f32,
    /// Pre-clip global gradient norm (diagnostics).
    pub grad_norm: f32,
}

/// Train `model` on `train_indices` of `dataset`.
///
/// `checkpoint_every` > 0 invokes `on_checkpoint(iteration, model)` at that
/// cadence (and at the final iteration) — the hook the Table II sweep uses
/// to evaluate intermediate models.
#[allow(clippy::too_many_arguments)]
pub fn train(
    model: &Yolov4,
    dataset: &SyntheticDataset,
    train_indices: &[usize],
    cfg: &TrainConfig,
    checkpoint_every: usize,
    mut on_checkpoint: impl FnMut(usize, &Yolov4),
    mut on_log: impl FnMut(&TrainRecord),
) -> Vec<TrainRecord> {
    let input = model.config.input_size;
    let mut loader_cfg = LoaderConfig::train(cfg.batch_size, input, cfg.seed);
    loader_cfg.mosaic_prob = cfg.mosaic_prob;
    let mut loader = BatchLoader::new(dataset, train_indices, loader_cfg);

    let schedule = LrSchedule::darknet(cfg.lr, cfg.iterations);
    let mut opt = Sgd::new(model.parameters(), cfg.momentum, cfg.weight_decay);
    if cfg.freeze_backbone_iters > 0 {
        model.set_backbone_frozen(true);
    }

    let mut history = Vec::with_capacity(cfg.iterations);
    for iter in 0..cfg.iterations {
        if cfg.freeze_backbone_iters > 0 && iter == cfg.freeze_backbone_iters {
            model.set_backbone_frozen(false);
        }
        let batch = loader.next_batch();
        let x = Tensor::from_vec(batch.data, &batch.shape);
        let targets = build_targets(&model.config, &batch.annotations);

        let mut g = Graph::new();
        let xv = g.leaf(x);
        let heads = model.forward(&mut g, xv, true);
        let (loss, parts) = yolo_loss(&mut g, &heads, &targets, &model.config, cfg.box_loss, cfg.weights);
        g.backward(loss);
        let grad_norm = clip_global_norm(&opt.params().to_vec(), cfg.clip_norm);
        let lr = schedule.lr_at(iter);
        opt.step(lr);
        opt.zero_grad();

        let record = TrainRecord { iteration: iter + 1, loss: parts, lr, grad_norm };
        on_log(&record);
        history.push(record);

        if checkpoint_every > 0 && ((iter + 1) % checkpoint_every == 0 || iter + 1 == cfg.iterations) {
            on_checkpoint(iter + 1, model);
        }
    }
    if cfg.freeze_backbone_iters > 0 {
        model.set_backbone_frozen(false);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::YoloConfig;
    use platter_dataset::{ClassSet, DatasetSpec, Split};

    fn tiny_dataset() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 16, 64, 3))
    }

    #[test]
    fn short_run_reduces_loss_and_checkpoints() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let model = Yolov4::new(YoloConfig::micro(10), 9);
        let mut cfg = TrainConfig::micro(12);
        cfg.batch_size = 2;
        cfg.mosaic_prob = 0.0;
        let mut checkpoints = Vec::new();
        let history = train(
            &model,
            &ds,
            &split.train,
            &cfg,
            6,
            |it, _| checkpoints.push(it),
            |_| {},
        );
        assert_eq!(history.len(), 12);
        assert_eq!(checkpoints, vec![6, 12]);
        assert!(history.iter().all(|r| r.loss.total.is_finite()));
        let first: f32 = history[..3].iter().map(|r| r.loss.total).sum();
        let last: f32 = history[9..].iter().map(|r| r.loss.total).sum();
        assert!(last < first, "loss should trend down: {first} → {last}");
    }

    #[test]
    fn burn_in_ramps_lr() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let model = Yolov4::new(YoloConfig::micro(10), 10);
        let mut cfg = TrainConfig::micro(25);
        cfg.batch_size = 1;
        cfg.mosaic_prob = 0.0;
        let history = train(&model, &ds, &split.train, &cfg, 0, |_, _| {}, |_| {});
        assert!(history[0].lr < history[19].lr, "burn-in must ramp LR");
    }

    #[test]
    fn freezing_keeps_backbone_constant_then_unfreezes() {
        let ds = tiny_dataset();
        let split = Split::eighty_twenty(ds.len(), 1);
        let model = Yolov4::new(YoloConfig::micro(10), 11);
        let stem_before = model.backbone_parameters()[0].value();
        let mut cfg = TrainConfig::micro(6);
        cfg.batch_size = 1;
        cfg.freeze_backbone_iters = 3;
        cfg.mosaic_prob = 0.0;

        // Hook at iteration 3: the stem must still equal its init.
        let stem_ref = stem_before.clone();
        train(
            &model,
            &ds,
            &split.train,
            &cfg,
            3,
            move |it, m| {
                if it == 3 {
                    let now = m.backbone_parameters()[0].value();
                    assert_eq!(now.as_slice(), stem_ref.as_slice(), "backbone moved while frozen");
                }
            },
            |_| {},
        );
        // After unfreezing (iters 4–6) the stem should have moved.
        let stem_after = model.backbone_parameters()[0].value();
        assert_ne!(stem_before.as_slice(), stem_after.as_slice(), "backbone never unfroze");
    }
}
