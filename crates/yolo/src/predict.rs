//! End-to-end inference: letterbox → forward → decode → NMS → map back to
//! image coordinates (the pipeline of the paper's Fig. 3).

use std::cell::RefCell;

use platter_imaging::augment::unletterbox_box;
use platter_imaging::Image;
use platter_tensor::{ExecError, Tensor};

use crate::model::{CompiledModel, Yolov4};
use crate::nms::{decode_detections, nms, Detection, NmsKind};
use crate::tta::{merge_tta, TtaConfig};

/// A request the detector cannot serve, reported before the executor runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetectError {
    /// The batch tensor is not `[n, 3, s, s]` at the model's input size.
    BadShape {
        /// Shape of the offending tensor.
        got: Vec<usize>,
        /// Expected per-item shape `[3, s, s]`.
        want: [usize; 3],
    },
    /// The compiled engine rejected the batch. [`Detector::try_detect_batch`]
    /// screens the common mismatches up front as [`DetectError::BadShape`],
    /// so this is the typed backstop for anything that still reaches the
    /// executor's own validation.
    Exec(ExecError),
}

impl std::fmt::Display for DetectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectError::BadShape { got, want } => {
                write!(f, "batch shape {got:?} is not [n, {}, {}, {}]", want[0], want[1], want[2])
            }
            DetectError::Exec(e) => write!(f, "planned execution rejected the batch: {e}"),
        }
    }
}

impl std::error::Error for DetectError {}

/// A configured detector ready to run on images.
///
/// Inference runs on the planned engine ([`Yolov4::compile_inference`]):
/// the first `detect`/`detect_batch` call compiles the model (folding batch
/// norms into conv weights) and later calls reuse the cached plan and
/// arena, so the steady state builds no tape and allocates nothing per
/// layer. The engine snapshots the weights at compile time — if the wrapped
/// model is trained or reloaded afterwards, call [`Detector::recompile`].
pub struct Detector {
    /// The trained model.
    pub model: Yolov4,
    /// Minimum confidence for a candidate box.
    pub conf_thresh: f32,
    /// NMS suppression threshold.
    pub nms_iou: f32,
    /// NMS flavour.
    pub nms_kind: NmsKind,
    engine: RefCell<Option<CompiledModel>>,
}

impl Detector {
    /// Wrap a model with the standard inference settings (conf 0.25,
    /// DIoU-NMS at 0.45 — darknet's defaults).
    pub fn new(model: Yolov4) -> Detector {
        Detector {
            model,
            conf_thresh: 0.25,
            nms_iou: 0.45,
            nms_kind: NmsKind::Diou,
            engine: RefCell::new(None),
        }
    }

    /// Rebuild the compiled engine from the model's current weights. Only
    /// needed when the weights changed after the first detection call.
    pub fn recompile(&self) {
        *self.engine.borrow_mut() = Some(self.model.compile_inference());
    }

    /// The expected per-item input shape `[3, s, s]`.
    fn want_shape(&self) -> [usize; 3] {
        let s = self.model.config.input_size;
        [3, s, s]
    }

    /// Decode + NMS over the compiled engine's head outputs for `x`,
    /// through the typed [`CompiledModel::try_run`] surface — the library
    /// path never funnels a bad batch into a panicking `run`.
    fn detect_candidates(&self, x: &Tensor) -> Result<Vec<Vec<Detection>>, ExecError> {
        let mut slot = self.engine.borrow_mut();
        let engine = slot.get_or_insert_with(|| self.model.compile_inference());
        let heads = engine.try_run(x)?;
        Ok(decode_detections(heads, &self.model.config, self.conf_thresh))
    }

    /// Validate a batch tensor against the model's input contract.
    fn check_batch(&self, batch: &Tensor) -> Result<(), DetectError> {
        let want = self.want_shape();
        if batch.ndim() != 4 || batch.shape()[1..] != want {
            return Err(DetectError::BadShape { got: batch.shape().to_vec(), want });
        }
        Ok(())
    }

    /// Detect dishes in an arbitrary-size image. Boxes come back in the
    /// original image's normalised coordinates.
    pub fn detect(&self, image: &Image) -> Vec<Detection> {
        let size = self.model.config.input_size;
        let lb = image.letterbox(size);
        let chw = lb.image.to_chw();
        let x = Tensor::from_vec(chw, &[1, 3, size, size]);
        let mut candidates = self
            .detect_candidates(&x)
            .expect("letterboxed input matches the compiled plan by construction");
        let kept = nms(std::mem::take(&mut candidates[0]), self.nms_iou, self.nms_kind);
        kept.into_iter()
            .filter_map(|d| {
                let mapped = unletterbox_box(&d.bbox, size, lb.scale, lb.pad_x, lb.pad_y, image.width(), image.height());
                mapped.clipped().map(|bbox| Detection { bbox, ..d })
            })
            .collect()
    }

    /// Detect over an already-batched CHW tensor (the validation loader's
    /// output — images are already square at input size, so no letterboxing).
    ///
    /// Panics on a malformed batch; serving paths should use
    /// [`Detector::try_detect_batch`], which reports the mismatch as a
    /// typed [`DetectError`] instead.
    pub fn detect_batch(&self, batch: &Tensor) -> Vec<Vec<Detection>> {
        self.try_detect_batch(batch).unwrap_or_else(|e| panic!("detect_batch: {e}"))
    }

    /// Like [`Detector::detect_batch`], but a tensor with the wrong rank,
    /// channel count, or spatial size is rejected up front as
    /// [`DetectError::BadShape`] rather than panicking deep inside the
    /// executor.
    pub fn try_detect_batch(&self, batch: &Tensor) -> Result<Vec<Vec<Detection>>, DetectError> {
        self.check_batch(batch)?;
        let candidates = self.detect_candidates(batch).map_err(DetectError::Exec)?;
        Ok(candidates
            .into_iter()
            .map(|c| {
                nms(c, self.nms_iou, self.nms_kind)
                    .into_iter()
                    .filter_map(|d| d.bbox.clipped().map(|bbox| Detection { bbox, ..d }))
                    .collect()
            })
            .collect())
    }

    /// Test-time-augmented batch detection: one plan execution per view in
    /// `tta` (identity, flip, zoom crops), detections mapped back into the
    /// original frame and merged through NMS by [`merge_tta`]. Non-identity
    /// views contribute at `tta.aux_weight()` score.
    ///
    /// Panics on a malformed batch like [`Detector::detect_batch`]; serving
    /// paths use [`Detector::try_detect_batch_tta`].
    pub fn detect_batch_tta(&self, batch: &Tensor, tta: &TtaConfig) -> Vec<Vec<Detection>> {
        self.try_detect_batch_tta(batch, tta).unwrap_or_else(|e| panic!("detect_batch_tta: {e}"))
    }

    /// Like [`Detector::detect_batch_tta`], with the malformed-batch cases
    /// reported as typed [`DetectError`]s.
    pub fn try_detect_batch_tta(&self, batch: &Tensor, tta: &TtaConfig) -> Result<Vec<Vec<Detection>>, DetectError> {
        self.check_batch(batch)?;
        let n = batch.shape()[0];
        // Per view: forward the transformed batch, then pull every
        // detection back into the original frame.
        let mut per_view: Vec<Vec<Vec<Detection>>> = Vec::new();
        for view in tta.views() {
            let x = view.transform_batch(batch);
            let weight = if view.is_identity() { 1.0 } else { tta.aux_weight() };
            let candidates = self.detect_candidates(&x).map_err(DetectError::Exec)?;
            per_view.push(
                candidates
                    .into_iter()
                    .map(|dets| {
                        dets.into_iter()
                            .map(|d| Detection {
                                bbox: view.untransform_box(&d.bbox),
                                score: d.score * weight,
                                ..d
                            })
                            .collect()
                    })
                    .collect(),
            );
        }
        Ok((0..n)
            .map(|i| {
                let sets: Vec<Vec<Detection>> = per_view.iter_mut().map(|v| std::mem::take(&mut v[i])).collect();
                merge_tta(sets, self.nms_iou, self.nms_kind)
                    .into_iter()
                    .filter_map(|d| d.bbox.clipped().map(|bbox| Detection { bbox, ..d }))
                    .collect()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::YoloConfig;
    use platter_imaging::Rgb;

    #[test]
    fn detect_runs_on_non_square_images() {
        let model = Yolov4::new(YoloConfig::micro(10), 1);
        let det = Detector::new(model);
        let img = Image::new(100, 60, Rgb::new(0.4, 0.3, 0.2));
        let out = det.detect(&img);
        // Untrained model: just verify the pipeline produces valid boxes.
        for d in &out {
            assert!(d.bbox.is_valid());
            assert!(d.score >= det.conf_thresh * 0.5);
            assert!(d.class < 10);
        }
    }

    #[test]
    fn detect_batch_shape_contract() {
        let model = Yolov4::new(YoloConfig::micro(10), 2);
        let det = Detector::new(model);
        let batch = Tensor::zeros(&[3, 3, 64, 64]);
        let out = det.detect_batch(&batch);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn try_detect_batch_rejects_malformed_tensors_with_typed_errors() {
        let model = Yolov4::new(YoloConfig::micro(10), 3);
        let det = Detector::new(model);
        let cases: [(&[usize], &str); 4] = [
            (&[1, 1, 64, 64], "wrong channel count"),
            (&[1, 3, 32, 32], "wrong spatial size"),
            (&[1, 3, 64, 32], "non-square input"),
            (&[3, 64, 64], "missing batch dim"),
        ];
        for (shape, what) in cases {
            let err = det.try_detect_batch(&Tensor::zeros(shape)).unwrap_err();
            match err {
                DetectError::BadShape { got, want } => {
                    assert_eq!(got, shape.to_vec(), "{what}");
                    assert_eq!(want, [3, 64, 64]);
                }
                other => panic!("{what}: expected BadShape, got {other:?}"),
            }
        }
        // A well-formed batch on the same detector still works afterwards.
        assert_eq!(det.try_detect_batch(&Tensor::zeros(&[2, 3, 64, 64])).unwrap().len(), 2);
    }

    #[test]
    fn tta_batch_runs_and_returns_valid_boxes() {
        let model = Yolov4::new(YoloConfig::micro(10), 5);
        let det = Detector::new(model);
        let tta = TtaConfig::standard();
        let batch = Tensor::from_vec((0..2 * 3 * 64 * 64).map(|i| (i % 97) as f32 / 97.0).collect(), &[2, 3, 64, 64]);
        let out = det.try_detect_batch_tta(&batch, &tta).unwrap();
        assert_eq!(out.len(), 2);
        for dets in &out {
            for d in dets {
                assert!(d.bbox.is_valid());
                assert!(d.score.is_finite());
                assert!(d.class < 10);
            }
        }
        // Malformed batches hit the same typed boundary as the plain path.
        let err = det.try_detect_batch_tta(&Tensor::zeros(&[1, 1, 64, 64]), &tta).unwrap_err();
        assert!(matches!(err, DetectError::BadShape { .. }));
    }

    #[test]
    fn tta_on_symmetric_input_agrees_with_single_pass_shape() {
        // Identity-weighted TTA can only reshuffle/suppress duplicates of
        // single-pass detections on a mirror-symmetric input.
        let model = Yolov4::new(YoloConfig::micro(10), 6);
        let det = Detector::new(model);
        let batch = Tensor::zeros(&[1, 3, 64, 64]);
        let single = det.try_detect_batch(&batch).unwrap();
        let tta = TtaConfig::new(true, vec![], 1.0).unwrap();
        let merged = det.try_detect_batch_tta(&batch, &tta).unwrap();
        assert_eq!(merged.len(), single.len());
    }

    #[test]
    #[should_panic(expected = "detect_batch: batch shape")]
    fn detect_batch_panics_at_the_boundary_not_in_the_executor() {
        let model = Yolov4::new(YoloConfig::micro(10), 4);
        let det = Detector::new(model);
        det.detect_batch(&Tensor::zeros(&[1, 4, 64, 64]));
    }
}
