//! The assembled YOLOv4 model: CSPDarknet53 + SPP/PANet + three heads, with
//! checkpointing and the backbone freeze/unfreeze switch that implements the
//! paper's transfer-learning stage.

use platter_tensor::serialize::{load_params, save_params, LoadMode, LoadReport, WeightError};
use platter_tensor::{
    quantize_plan, Calibration, DType, ExecError, Executor, Graph, Mode, Param, Plan, Planner,
    QuantError, Tensor, Trace, Var,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::backbone::CspDarknet;
use crate::config::YoloConfig;
use crate::head::YoloHeads;
use crate::neck::PanNeck;

/// The full detector.
pub struct Yolov4 {
    /// Model configuration.
    pub config: YoloConfig,
    backbone: CspDarknet,
    neck: PanNeck,
    heads: YoloHeads,
}

impl Yolov4 {
    /// Build a freshly initialised model (Kaiming init, seeded).
    pub fn new(config: YoloConfig, seed: u64) -> Yolov4 {
        config.validate().expect("invalid config");
        let mut rng = StdRng::seed_from_u64(seed);
        Yolov4 {
            backbone: CspDarknet::new("backbone", &config, &mut rng),
            neck: PanNeck::new("neck", &config, &mut rng),
            heads: YoloHeads::new("head", &config, &mut rng),
            config,
        }
    }

    /// Build a model directly from a checkpoint buffer: fresh topology for
    /// `config`, every parameter restored strictly from `buf`. This is the
    /// registry's fork-from-weights surface — one call takes a CRC-verified
    /// PLTW buffer to a servable model, with every failure (corrupt buffer,
    /// wrong-architecture shapes, missing entries) surfacing as a typed
    /// [`WeightError`] instead of a half-initialised model.
    ///
    /// The Kaiming init the constructor runs is immediately overwritten, so
    /// the seed is fixed; strict mode guarantees no initialised value
    /// survives into the returned model.
    pub fn from_weights(config: YoloConfig, buf: &[u8]) -> Result<Yolov4, WeightError> {
        let model = Yolov4::new(config, 0);
        model.load(buf, LoadMode::Strict)?;
        Ok(model)
    }

    /// Trace the whole network onto a backend, producing raw head logits
    /// `[stride8, stride16, stride32]`. This is the **single definition** of
    /// the YOLOv4 topology: the eager tape ([`Graph`]) and the inference
    /// planner ([`Planner`]) both replay it.
    ///
    /// The traced input must be `[3, s, s]` per item with
    /// `s == config.input_size`.
    pub fn trace<B: Trace>(&self, b: &mut B, x: B::Value, mode: Mode) -> [B::Value; 3] {
        let shape = b.item_shape(x);
        assert_eq!(shape[0], 3, "expected RGB input, got {shape:?}");
        assert_eq!(
            shape[1],
            self.config.input_size,
            "input size {shape:?} does not match config {}",
            self.config.input_size
        );
        let f = self.backbone.trace(b, x, mode);
        let n = self.neck.trace(b, &f, mode);
        self.heads.trace(b, &n, mode)
    }

    /// Eager forward to raw head logits (thin wrapper over
    /// [`Yolov4::trace`] for the training loop).
    ///
    /// `x` must be `[n, 3, s, s]` with `s == config.input_size`.
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool) -> [Var; 3] {
        self.trace(g, x, Mode::from_training(training))
    }

    /// Convenience: run inference on a CHW image tensor batch, returning the
    /// three raw head tensors.
    ///
    /// This is the *eager* path — it builds a fresh tape every call and is
    /// kept as the reference implementation. Hot loops should use
    /// [`Yolov4::compile_inference`] instead.
    pub fn infer(&self, x: &Tensor) -> [Tensor; 3] {
        let mut g = Graph::inference();
        let xv = g.leaf(x.clone());
        let out = self.forward(&mut g, xv, false);
        [g.value(out[0]).clone(), g.value(out[1]).clone(), g.value(out[2]).clone()]
    }

    /// Compile the network into a tape-free [`CompiledModel`]: batch norms
    /// fold into conv weights, activations fuse into conv output loops, and
    /// all intermediates run in a statically planned arena reused across
    /// calls. Weights are snapshotted at compile time — recompile after
    /// training steps or checkpoint loads.
    pub fn compile_inference(&self) -> CompiledModel {
        let mut p = Planner::new();
        let s = self.config.input_size;
        let x = p.input(&[3, s, s]);
        let heads = self.trace(&mut p, x, Mode::Infer);
        CompiledModel { exec: Executor::new(p.finish(&heads)), input_size: s }
    }

    /// Compile an **INT8-quantized** engine: the f32 plan is built exactly as
    /// in [`Yolov4::compile_inference`], then a recording pass over
    /// `calibration` (each batch `[n, 3, s, s]`, e.g. rendered validation
    /// images) captures per-value activation ranges, and
    /// [`quantize_plan`] rewrites every convolution to the i8 GEMM path —
    /// per-channel symmetric weights, per-tensor activation scales, dequant
    /// fused into the epilogue. Outputs stay f32 and track the f32 engine
    /// within the loosened [`platter_tensor::parity`] quantization bounds.
    ///
    /// # Errors
    ///
    /// [`QuantError`] when `calibration` is empty, a recorded range is
    /// non-finite (the calibration set produced NaN/Inf activations), or no
    /// convolution could be quantized.
    pub fn compile_inference_quantized(
        &self,
        calibration: &[Tensor],
    ) -> Result<CompiledModel, QuantError> {
        if calibration.is_empty() {
            return Err(QuantError::NoCalibrationPasses);
        }
        let mut p = Planner::new();
        let s = self.config.input_size;
        let x = p.input(&[3, s, s]);
        let heads = self.trace(&mut p, x, Mode::Infer);
        let plan = std::sync::Arc::new(p.finish(&heads));
        let mut calib = Calibration::for_plan(&plan);
        let mut exec = Executor::from_shared(plan.clone());
        for batch in calibration {
            exec.run_calibrating(&[batch], &mut calib)
                .expect("calibration batch shape must match the compiled input");
        }
        let qplan = quantize_plan(&plan, &calib)?;
        Ok(CompiledModel { exec: Executor::new(qplan), input_size: s })
    }

    /// All parameters (backbone + neck + heads).
    pub fn parameters(&self) -> Vec<Param> {
        let mut p = self.backbone.parameters();
        p.extend(self.neck.parameters());
        p.extend(self.heads.parameters());
        p
    }

    /// Backbone parameters only (the transfer-learning subset).
    pub fn backbone_parameters(&self) -> Vec<Param> {
        self.backbone.parameters()
    }

    /// Freeze or unfreeze the backbone. Frozen parameters receive no
    /// gradients and are skipped by optimizers — darknet's
    /// `stopbackward`-style fine-tuning of only the neck/heads.
    pub fn set_backbone_frozen(&self, frozen: bool) {
        for p in self.backbone_parameters() {
            // Keep BN running stats permanently frozen-flagged.
            if !p.name().contains("running_") {
                p.set_frozen(frozen);
            }
        }
    }

    /// Serialise every parameter to a checkpoint buffer.
    pub fn save(&self) -> platter_tensor::serialize::Bytes {
        save_params(&self.parameters())
    }

    /// Restore parameters from a checkpoint buffer.
    pub fn load(&self, buf: &[u8], mode: LoadMode) -> Result<LoadReport, WeightError> {
        load_params(&self.parameters(), buf, mode)
    }

    /// Total parameter count.
    pub fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }
}

/// A planned, tape-free YOLOv4 inference engine (see
/// [`Yolov4::compile_inference`]). Holds the op plan plus a persistent
/// arena; after the first call at a given batch size, [`CompiledModel::run`]
/// allocates nothing.
///
/// The plan and its folded weights live behind an `Arc`, so
/// [`CompiledModel::fork_worker`] hands a serving pool N independent engines
/// that share one copy of the parameters — unlike the tape-bound [`Yolov4`]
/// itself, a `CompiledModel` is `Send` and crosses thread boundaries.
pub struct CompiledModel {
    exec: Executor,
    input_size: usize,
}

impl CompiledModel {
    /// A sibling engine sharing this one's plan and weights, with a fresh
    /// private arena. This is the unit of data-parallel serving: compile
    /// once, fork per worker; outputs are bit-identical to the parent's.
    pub fn fork_worker(&self) -> CompiledModel {
        CompiledModel { exec: self.exec.fork(), input_size: self.input_size }
    }

    /// The shared parameter store. The `Arc`'s strong count counts plans,
    /// not workers (forks share the plan); it is the handle leak-checks and
    /// memory accounting key on.
    pub fn shared_weights(&self) -> std::sync::Arc<platter_tensor::PlanWeights> {
        self.exec.plan().weights().clone()
    }

    /// Identity of the folded parameters this engine serves from (see
    /// [`platter_tensor::PlanWeights::fingerprint`]). Two engines with equal
    /// fingerprints answer bit-identically; the serving registry uses this
    /// to tag model versions and to verify which weights a pool is actually
    /// running after a hot-swap.
    pub fn weights_fingerprint(&self) -> u64 {
        self.exec.plan().weights().fingerprint()
    }
    /// Raw head logits `[stride8, stride16, stride32]` for an
    /// `[n, 3, s, s]` input batch. The returned slice (always length 3)
    /// aliases executor-owned tensors and is overwritten by the next call.
    pub fn run(&mut self, x: &Tensor) -> &[Tensor] {
        assert_eq!(x.shape().len(), 4, "expected [n,3,s,s] input, got {:?}", x.shape());
        assert_eq!(x.shape()[1], 3, "expected RGB input, got {:?}", x.shape());
        assert_eq!(
            x.shape()[2],
            self.input_size,
            "input size {:?} does not match compiled size {}",
            x.shape(),
            self.input_size
        );
        self.exec.run(&[x])
    }

    /// Like [`CompiledModel::run`], but a malformed batch (wrong rank,
    /// channels, or spatial size) surfaces as a typed [`ExecError`] instead
    /// of a panic — the entry point serving paths should use.
    pub fn try_run(&mut self, x: &Tensor) -> Result<&[Tensor], ExecError> {
        self.exec.try_run(&[x])
    }

    /// Like [`CompiledModel::run`], but reports per-op wall time, call
    /// count, and bytes touched to `profiler`
    /// ([`platter_obs::ProfileReport`] is the standard sink). Outputs are
    /// bit-identical to `run`.
    pub fn run_profiled(&mut self, x: &Tensor, profiler: &mut dyn platter_obs::Profiler) -> &[Tensor] {
        self.exec.run_profiled(&[x], profiler)
    }

    /// The numeric format this engine's weights are stored in: [`DType::I8`]
    /// for engines from [`Yolov4::compile_inference_quantized`], otherwise
    /// [`DType::F32`]. The serving registry records this per model version
    /// and mixes it into manifest fingerprints.
    pub fn dtype(&self) -> DType {
        self.exec.plan().dtype()
    }

    /// The underlying plan (op/slot introspection).
    pub fn plan(&self) -> &Plan {
        self.exec.plan()
    }

    /// Bytes currently held by the activation arena.
    pub fn arena_bytes(&self) -> usize {
        self.exec.arena_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_for_micro() {
        let model = Yolov4::new(YoloConfig::micro(10), 7);
        let out = model.infer(&Tensor::zeros(&[1, 3, 64, 64]));
        assert_eq!(out[0].shape(), &[1, 45, 8, 8]);
        assert_eq!(out[1].shape(), &[1, 45, 4, 4]);
        assert_eq!(out[2].shape(), &[1, 45, 2, 2]);
    }

    #[test]
    fn checkpoint_round_trip_reproduces_outputs() {
        let a = Yolov4::new(YoloConfig::micro(5), 1);
        let b = Yolov4::new(YoloConfig::micro(5), 2);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[1, 3, 64, 64], &mut rng);
        let before = a.infer(&x);
        let buf = a.save();
        b.load(&buf, LoadMode::Strict).unwrap();
        let after = b.infer(&x);
        for (ta, tb) in before.iter().zip(&after) {
            for (va, vb) in ta.as_slice().iter().zip(tb.as_slice()) {
                assert!((va - vb).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn freeze_unfreeze_toggles_all_backbone_weights() {
        let model = Yolov4::new(YoloConfig::micro(3), 4);
        model.set_backbone_frozen(true);
        for p in model.backbone_parameters() {
            assert!(p.is_frozen(), "{}", p.name());
        }
        // Heads stay trainable.
        assert!(model.parameters().iter().any(|p| !p.is_frozen()));
        model.set_backbone_frozen(false);
        for p in model.backbone_parameters() {
            if p.name().contains("running_") {
                assert!(p.is_frozen(), "BN stats must stay frozen: {}", p.name());
            } else {
                assert!(!p.is_frozen(), "{}", p.name());
            }
        }
    }

    #[test]
    fn from_weights_reproduces_the_checkpointed_model() {
        let src = Yolov4::new(YoloConfig::micro(5), 9);
        let buf = src.save();
        let dst = Yolov4::from_weights(YoloConfig::micro(5), &buf).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[1, 3, 64, 64], &mut rng);
        let a = src.infer(&x);
        let b = dst.infer(&x);
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.as_slice(), tb.as_slice(), "restored model must match bit-for-bit");
        }
        assert_eq!(
            src.compile_inference().weights_fingerprint(),
            dst.compile_inference().weights_fingerprint(),
            "same parameters fold to the same plan-weights identity"
        );
    }

    #[test]
    fn from_weights_rejects_wrong_architecture() {
        let src = Yolov4::new(YoloConfig::micro(5), 9);
        let buf = src.save();
        // Different class count changes head shapes: strict load must fail.
        match Yolov4::from_weights(YoloConfig::micro(7), &buf) {
            Err(WeightError::Incompatible(_)) => {}
            other => panic!("expected Incompatible, got {:?}", other.map(|_| "model")),
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Yolov4::new(YoloConfig::micro(3), 1);
        let b = Yolov4::new(YoloConfig::micro(3), 2);
        let wa = a.parameters()[0].value();
        let wb = b.parameters()[0].value();
        assert_ne!(wa.as_slice(), wb.as_slice());
    }

    #[test]
    #[should_panic(expected = "does not match config")]
    fn rejects_wrong_input_size() {
        let model = Yolov4::new(YoloConfig::micro(3), 1);
        model.infer(&Tensor::zeros(&[1, 3, 32, 32]));
    }
}
