//! SORT-style tracking-by-detection: constant-velocity Kalman filters,
//! an IoU cost matrix, and Hungarian assignment.
//!
//! The serving layer runs a detector per frame; this module turns those
//! per-frame detections into *identities over time* — the dietary-tracking
//! application the paper motivates needs "the same bowl of dal across the
//! pan", not sixty independent detections of dal. The design follows the
//! classic SORT recipe: each track carries a constant-velocity Kalman
//! filter (one independent position/velocity filter per box coordinate, so
//! no matrix inversion is ever needed), frames associate detections to
//! predicted tracks by maximising IoU through an optimal Hungarian
//! assignment, and track lifecycle is governed by `max_age` (frames a
//! track survives unmatched) and `min_hits` (consecutive matches before a
//! track is reported).
//!
//! Determinism contract (CI-gated like `metrics::matching`): the tracker
//! holds **no RNG** and never calls `partial_cmp` — detections are first
//! put into a canonical order (score descending via `total_cmp`, then
//! class, then box bit patterns), so [`SortTracker::step`] is a pure
//! function of the detection *multiset* and the tracker state. Same
//! stream ⇒ bit-identical track ids, which is what the serve-layer replay
//! gate in `verify.sh` pins.

use crate::nms::Detection;
use platter_imaging::NormBox;

/// Association cost assigned to forbidden pairs (class mismatch) and to
/// padding cells; any real association costs at most `1.0`.
const FORBIDDEN: f64 = 1e6;

/// A tracker configuration the constructor refuses: NaN or out-of-range.
#[derive(Clone, Debug, PartialEq)]
pub enum TrackError {
    /// A configuration field is NaN or infinite.
    NonFinite {
        /// Name of the offending field.
        field: &'static str,
    },
    /// A configuration field is finite but outside its legal interval.
    OutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl std::fmt::Display for TrackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrackError::NonFinite { field } => write!(f, "field `{field}` is not finite"),
            TrackError::OutOfRange { field, value, lo, hi } => {
                write!(f, "field `{field}` = {value} outside [{lo}, {hi}]")
            }
        }
    }
}

impl std::error::Error for TrackError {}

/// SORT lifecycle and gating knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrackConfig {
    /// Minimum IoU between a predicted track box and a detection for the
    /// pair to count as an association.
    pub iou_thresh: f32,
    /// Frames a track survives without a match before deletion. Deleted
    /// ids are never reused — a dish that reappears later is a new track.
    pub max_age: u32,
    /// Consecutive matches required before a track is reported (suppresses
    /// one-frame false positives). Tracks born in the first `min_hits`
    /// frames report immediately, so short clips still produce output.
    pub min_hits: u32,
}

impl Default for TrackConfig {
    fn default() -> TrackConfig {
        TrackConfig { iou_thresh: 0.3, max_age: 3, min_hits: 2 }
    }
}

impl TrackConfig {
    /// Validate every field, returning the first offending one.
    pub fn validate(&self) -> Result<(), TrackError> {
        if !self.iou_thresh.is_finite() {
            return Err(TrackError::NonFinite { field: "iou_thresh" });
        }
        if !(0.0..=1.0).contains(&self.iou_thresh) {
            return Err(TrackError::OutOfRange {
                field: "iou_thresh",
                value: self.iou_thresh as f64,
                lo: 0.0,
                hi: 1.0,
            });
        }
        Ok(())
    }
}

/// One reported track in one frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Track {
    /// Stable identity, unique across the tracker's lifetime.
    pub id: u64,
    /// Class the track was created with (association is class-gated, so it
    /// never changes).
    pub class: usize,
    /// Kalman-filtered box estimate for this frame.
    pub bbox: NormBox,
    /// Score of the most recent matched detection.
    pub score: f32,
    /// Total matches over the track's lifetime.
    pub hits: u32,
}

/// One scalar constant-velocity Kalman filter: state `(position,
/// velocity)` with a symmetric 2×2 covariance. Four of these — cx, cy, w,
/// h — make a box filter without any matrix inversion.
#[derive(Clone, Copy, Debug)]
struct Axis {
    pos: f32,
    vel: f32,
    c00: f32,
    c01: f32,
    c11: f32,
}

/// Process noise on position per frame.
const Q_POS: f32 = 1e-4;
/// Process noise on velocity per frame.
const Q_VEL: f32 = 1e-4;
/// Measurement noise (detections are normalised coordinates).
const R_MEAS: f32 = 1e-3;

impl Axis {
    fn new(pos: f32) -> Axis {
        // Position observed once; velocity unknown.
        Axis { pos, vel: 0.0, c00: R_MEAS, c01: 0.0, c11: 1.0 }
    }

    /// Advance one frame under the constant-velocity model.
    fn predict(&mut self) {
        self.pos += self.vel;
        self.c00 += 2.0 * self.c01 + self.c11 + Q_POS;
        self.c01 += self.c11;
        self.c11 += Q_VEL;
    }

    /// Fold in a position measurement.
    fn update(&mut self, z: f32) {
        let innovation = z - self.pos;
        let s = self.c00 + R_MEAS;
        let k0 = self.c00 / s;
        let k1 = self.c01 / s;
        self.pos += k0 * innovation;
        self.vel += k1 * innovation;
        let c00 = (1.0 - k0) * self.c00;
        let c01 = (1.0 - k0) * self.c01;
        let c11 = self.c11 - k1 * self.c01;
        self.c00 = c00;
        self.c01 = c01;
        self.c11 = c11;
    }
}

#[derive(Clone, Debug)]
struct TrackState {
    id: u64,
    class: usize,
    axes: [Axis; 4],
    score: f32,
    hits: u32,
    hit_streak: u32,
    time_since_update: u32,
}

impl TrackState {
    fn new(id: u64, det: &Detection) -> TrackState {
        TrackState {
            id,
            class: det.class,
            axes: [
                Axis::new(det.bbox.cx),
                Axis::new(det.bbox.cy),
                Axis::new(det.bbox.w),
                Axis::new(det.bbox.h),
            ],
            score: det.score,
            hits: 1,
            hit_streak: 1,
            time_since_update: 0,
        }
    }

    fn bbox(&self) -> NormBox {
        NormBox {
            cx: self.axes[0].pos,
            cy: self.axes[1].pos,
            // A filter briefly predicting a non-positive size must still
            // yield a usable box for IoU gating.
            w: self.axes[2].pos.max(1e-4),
            h: self.axes[3].pos.max(1e-4),
        }
    }
}

/// The tracker: owns all live tracks and a monotone id counter.
#[derive(Clone, Debug)]
pub struct SortTracker {
    cfg: TrackConfig,
    tracks: Vec<TrackState>,
    next_id: u64,
    frame_count: u64,
}

impl SortTracker {
    /// Build a tracker, rejecting invalid configurations.
    pub fn new(cfg: TrackConfig) -> Result<SortTracker, TrackError> {
        cfg.validate()?;
        Ok(SortTracker { cfg, tracks: Vec::new(), next_id: 0, frame_count: 0 })
    }

    /// The configuration the tracker was built with.
    pub fn config(&self) -> &TrackConfig {
        &self.cfg
    }

    /// Frames stepped so far.
    pub fn frames(&self) -> u64 {
        self.frame_count
    }

    /// Advance one frame: predict every track, associate `detections`,
    /// update matched tracks, spawn tracks for unmatched detections, retire
    /// tracks unmatched for more than `max_age` frames. Returns the
    /// reported tracks in id order.
    ///
    /// Detections with a non-finite score or an invalid box are dropped
    /// (the serve pool sanitises upstream, but the tracker must never let
    /// a NaN into a cost matrix). Input order is irrelevant: detections
    /// are canonically re-ordered before association.
    pub fn step(&mut self, detections: &[Detection]) -> Vec<Track> {
        self.frame_count += 1;
        let dets = canonical_detections(detections);

        for t in &mut self.tracks {
            for a in &mut t.axes {
                a.predict();
            }
        }

        // Associate: rows = tracks, cols = detections, cost = 1 − IoU for
        // same-class pairs, FORBIDDEN otherwise; pad square so Hungarian
        // sees a complete bipartite problem.
        let n_tracks = self.tracks.len();
        let n_dets = dets.len();
        let mut det_of_track = vec![usize::MAX; n_tracks];
        let mut track_of_det = vec![usize::MAX; n_dets];
        if n_tracks > 0 && n_dets > 0 {
            let n = n_tracks.max(n_dets);
            let mut cost = vec![vec![FORBIDDEN; n]; n];
            for (i, t) in self.tracks.iter().enumerate() {
                let pred = t.bbox();
                for (j, d) in dets.iter().enumerate() {
                    if t.class == d.class {
                        let iou = pred.iou(&d.bbox);
                        if iou >= self.cfg.iou_thresh {
                            cost[i][j] = 1.0 - iou as f64;
                        }
                    }
                }
            }
            for (i, j) in hungarian(&cost) {
                if i < n_tracks && j < n_dets && cost[i][j] < FORBIDDEN {
                    det_of_track[i] = j;
                    track_of_det[j] = i;
                }
            }
        }

        for (i, t) in self.tracks.iter_mut().enumerate() {
            let j = det_of_track[i];
            if j != usize::MAX {
                let d = &dets[j];
                t.axes[0].update(d.bbox.cx);
                t.axes[1].update(d.bbox.cy);
                t.axes[2].update(d.bbox.w);
                t.axes[3].update(d.bbox.h);
                t.score = d.score;
                t.hits += 1;
                t.hit_streak += 1;
                t.time_since_update = 0;
            } else {
                t.hit_streak = 0;
                t.time_since_update += 1;
            }
        }

        // Births in canonical detection order, so id assignment is a
        // function of the multiset too.
        for (j, d) in dets.iter().enumerate() {
            if track_of_det[j] == usize::MAX {
                let id = self.next_id;
                self.next_id += 1;
                self.tracks.push(TrackState::new(id, d));
            }
        }

        let max_age = self.cfg.max_age;
        self.tracks.retain(|t| t.time_since_update <= max_age);

        let mut out: Vec<Track> = self
            .tracks
            .iter()
            .filter(|t| {
                t.time_since_update == 0
                    && (t.hit_streak >= self.cfg.min_hits
                        || self.frame_count <= self.cfg.min_hits as u64)
            })
            .map(|t| Track {
                id: t.id,
                class: t.class,
                bbox: t.bbox(),
                score: t.score,
                hits: t.hits,
            })
            .collect();
        out.sort_by_key(|t| t.id);
        out
    }
}

/// Drop unusable detections and impose the canonical order: score
/// descending (`total_cmp`), then class, then box bit patterns. Two calls
/// with permutations of the same multiset produce identical vectors.
fn canonical_detections(detections: &[Detection]) -> Vec<Detection> {
    let mut dets: Vec<Detection> = detections
        .iter()
        .filter(|d| d.score.is_finite() && d.bbox.is_valid())
        .copied()
        .collect();
    dets.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.class.cmp(&b.class))
            .then(a.bbox.cx.to_bits().cmp(&b.bbox.cx.to_bits()))
            .then(a.bbox.cy.to_bits().cmp(&b.bbox.cy.to_bits()))
            .then(a.bbox.w.to_bits().cmp(&b.bbox.w.to_bits()))
            .then(a.bbox.h.to_bits().cmp(&b.bbox.h.to_bits()))
    });
    dets
}

/// Minimum-cost perfect assignment on a square cost matrix (the classic
/// O(n³) potentials formulation). Returns `(row, col)` pairs. All costs
/// must be finite; ties resolve deterministically by index order, which —
/// combined with the canonical detection order upstream — is what makes
/// association permutation-invariant.
fn hungarian(cost: &[Vec<f64>]) -> Vec<(usize, usize)> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut matched_row = vec![0usize; n + 1]; // matched_row[col] = row (1-based)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        matched_row[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = matched_row[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[matched_row[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if matched_row[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            matched_row[j0] = matched_row[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut out = Vec::with_capacity(n);
    for (j, &row) in matched_row.iter().enumerate().skip(1) {
        if row != 0 {
            out.push((row - 1, j - 1));
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: usize, score: f32, cx: f32, cy: f32, w: f32, h: f32) -> Detection {
        Detection { class, score, bbox: NormBox::new(cx, cy, w, h) }
    }

    #[test]
    fn hungarian_picks_the_optimal_assignment() {
        // Greedy row-wise would pick (0,0)=1 then (1,1)=4 → 5; optimal is
        // (0,1)+(1,0) = 2+2 = 4.
        let cost = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(hungarian(&cost), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn hungarian_three_by_three() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let m = hungarian(&cost);
        let total: f64 = m.iter().map(|&(i, j)| cost[i][j]).sum();
        assert_eq!(total, 5.0, "optimal is 1 + 2 + 2");
    }

    #[test]
    fn smooth_motion_keeps_one_id() {
        let mut tr = SortTracker::new(TrackConfig::default()).unwrap();
        for t in 0..10 {
            let cx = 0.2 + 0.05 * t as f32;
            let out = tr.step(&[det(3, 0.9, cx, 0.5, 0.2, 0.2)]);
            if t >= 1 {
                assert_eq!(out.len(), 1);
                assert_eq!(out[0].id, 0);
                assert_eq!(out[0].class, 3);
            }
        }
    }

    #[test]
    fn min_hits_gates_reporting() {
        let cfg = TrackConfig { min_hits: 3, ..TrackConfig::default() };
        let mut tr = SortTracker::new(cfg).unwrap();
        // Start past the warm-up window: empty frames first.
        for _ in 0..5 {
            assert!(tr.step(&[]).is_empty());
        }
        assert!(tr.step(&[det(0, 0.9, 0.5, 0.5, 0.2, 0.2)]).is_empty());
        assert!(tr.step(&[det(0, 0.9, 0.5, 0.5, 0.2, 0.2)]).is_empty());
        let out = tr.step(&[det(0, 0.9, 0.5, 0.5, 0.2, 0.2)]);
        assert_eq!(out.len(), 1, "third consecutive hit reports");
    }

    #[test]
    fn occlusion_within_max_age_keeps_the_id() {
        let mut tr = SortTracker::new(TrackConfig::default()).unwrap();
        tr.step(&[det(1, 0.9, 0.5, 0.5, 0.2, 0.2)]);
        tr.step(&[det(1, 0.9, 0.5, 0.5, 0.2, 0.2)]);
        // Two missed frames (max_age = 3 tolerates them). The streak
        // resets, so the track resurfaces after min_hits = 2 re-matches.
        tr.step(&[]);
        tr.step(&[]);
        assert!(tr.step(&[det(1, 0.9, 0.5, 0.5, 0.2, 0.2)]).is_empty());
        let out = tr.step(&[det(1, 0.9, 0.5, 0.5, 0.2, 0.2)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 0, "track survives a short occlusion");
    }

    #[test]
    fn no_resurrection_after_max_age() {
        let cfg = TrackConfig { max_age: 2, min_hits: 1, ..TrackConfig::default() };
        let mut tr = SortTracker::new(cfg).unwrap();
        tr.step(&[det(1, 0.9, 0.5, 0.5, 0.2, 0.2)]);
        for _ in 0..3 {
            tr.step(&[]);
        }
        let out = tr.step(&[det(1, 0.9, 0.5, 0.5, 0.2, 0.2)]);
        assert_eq!(out.len(), 1);
        assert_ne!(out[0].id, 0, "expired identity must not come back");
    }

    #[test]
    fn association_is_class_gated() {
        let cfg = TrackConfig { min_hits: 1, ..TrackConfig::default() };
        let mut tr = SortTracker::new(cfg).unwrap();
        tr.step(&[det(1, 0.9, 0.5, 0.5, 0.2, 0.2)]);
        // Same place, different class: must be a new track, not an update.
        let out = tr.step(&[det(2, 0.9, 0.5, 0.5, 0.2, 0.2)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].class, 2);
        assert_eq!(out[0].id, 1);
    }

    #[test]
    fn input_order_does_not_matter() {
        let a = det(0, 0.9, 0.3, 0.3, 0.2, 0.2);
        let b = det(1, 0.8, 0.7, 0.7, 0.2, 0.2);
        let mut t1 = SortTracker::new(TrackConfig::default()).unwrap();
        let mut t2 = SortTracker::new(TrackConfig::default()).unwrap();
        for _ in 0..4 {
            let o1 = t1.step(&[a, b]);
            let o2 = t2.step(&[b, a]);
            assert_eq!(o1, o2);
        }
    }

    #[test]
    fn non_finite_detections_are_dropped() {
        let cfg = TrackConfig { min_hits: 1, ..TrackConfig::default() };
        let mut tr = SortTracker::new(cfg).unwrap();
        let out = tr.step(&[
            det(0, f32::NAN, 0.5, 0.5, 0.2, 0.2),
            det(0, 0.9, f32::NAN, 0.5, 0.2, 0.2),
            det(0, 0.9, 0.3, 0.3, 0.2, 0.2),
        ]);
        assert_eq!(out.len(), 1, "only the clean detection survives");
    }

    #[test]
    fn bad_config_is_rejected() {
        let nan = TrackConfig { iou_thresh: f32::NAN, ..TrackConfig::default() };
        assert_eq!(
            SortTracker::new(nan).unwrap_err(),
            TrackError::NonFinite { field: "iou_thresh" }
        );
        let big = TrackConfig { iou_thresh: 1.5, ..TrackConfig::default() };
        assert_eq!(
            SortTracker::new(big).unwrap_err(),
            TrackError::OutOfRange { field: "iou_thresh", value: 1.5, lo: 0.0, hi: 1.0 }
        );
    }

    #[test]
    fn crossing_objects_keep_their_ids() {
        // Two same-class boxes swap sides; optimal IoU association must
        // follow each one through the crossing rather than swapping ids.
        let cfg = TrackConfig { min_hits: 1, ..TrackConfig::default() };
        let mut tr = SortTracker::new(cfg).unwrap();
        let mut id_left = None;
        for t in 0..=10 {
            let x_a = 0.2 + 0.06 * t as f32; // moves right
            let x_b = 0.8 - 0.06 * t as f32; // moves left
            let out = tr.step(&[
                det(0, 0.9, x_a, 0.4, 0.15, 0.15),
                det(0, 0.9, x_b, 0.6, 0.15, 0.15),
            ]);
            assert_eq!(out.len(), 2);
            if t == 0 {
                id_left = Some(out.iter().min_by(|p, q| p.bbox.cx.total_cmp(&q.bbox.cx)).unwrap().id);
            }
        }
        // After crossing, the track that started on the left is now on the
        // right.
        let final_out = tr.step(&[
            det(0, 0.9, 0.2 + 0.06 * 11.0, 0.4, 0.15, 0.15),
            det(0, 0.9, 0.8 - 0.06 * 11.0, 0.6, 0.15, 0.15),
        ]);
        let rightmost = final_out
            .iter()
            .max_by(|p, q| p.bbox.cx.total_cmp(&q.bbox.cx))
            .unwrap();
        assert_eq!(Some(rightmost.id), id_left);
    }
}
