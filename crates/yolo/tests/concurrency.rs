//! Weight-sharing concurrency suite for the compiled engine.
//!
//! The serving pool's whole ownership story rests on two properties of
//! [`CompiledModel::fork_worker`]: forks running concurrently on their own
//! threads produce outputs bit-identical to the master engine, and dropping
//! the engines releases the shared plan + weights (no copies were made, and
//! nothing leaks). Both are pinned here at the yolo layer, below any
//! serving machinery.

use std::sync::Arc;

use platter_tensor::Tensor;
use platter_yolo::{YoloConfig, Yolov4};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn nano_model(seed: u64) -> Yolov4 {
    Yolov4::new(YoloConfig { input_size: 32, width: 0.1, ..YoloConfig::micro(10) }, seed)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn forked_workers_match_master_bit_for_bit_across_threads() {
    let model = nano_model(11);
    let mut master = model.compile_inference();
    let mut rng = StdRng::seed_from_u64(42);
    let inputs: Vec<Tensor> =
        (0..3).map(|_| Tensor::randn(&[2, 3, 32, 32], &mut rng)).collect();

    // Reference outputs from the master engine, single-threaded.
    let want: Vec<Vec<Vec<u32>>> = inputs
        .iter()
        .map(|x| master.run(x).iter().map(bits).collect())
        .collect();

    // Four forks, each on its own thread, each running every input. The
    // forks share the master's plan and weights; only scratch is private,
    // so every head tensor must come back bit-identical.
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let mut engine = master.fork_worker();
            let inputs = &inputs;
            let want = &want;
            scope.spawn(move || {
                for (i, x) in inputs.iter().enumerate() {
                    let got: Vec<Vec<u32>> = engine.run(x).iter().map(bits).collect();
                    assert_eq!(got, want[i], "worker {worker} diverged on input {i}");
                }
            });
        }
    });

    // The master is untouched by its forks' work.
    let after: Vec<Vec<u32>> = master.run(&inputs[0]).iter().map(bits).collect();
    assert_eq!(after, want[0]);
}

#[test]
fn dropping_engines_releases_the_shared_weights() {
    let model = nano_model(12);
    let master = model.compile_inference();
    let weights = master.shared_weights();
    // One count inside the plan, one held here. Forks share the plan (which
    // owns the weights), so the count stays put no matter how many workers
    // exist — that is the whole point of the split.
    assert_eq!(Arc::strong_count(&weights), 2);
    let forks: Vec<_> = (0..8).map(|_| master.fork_worker()).collect();
    assert_eq!(Arc::strong_count(&weights), 2);

    // A fork keeps working after the master is gone…
    let mut survivor = forks.into_iter().next().unwrap();
    drop(master);
    let out = survivor.run(&Tensor::zeros(&[1, 3, 32, 32]));
    assert_eq!(out.len(), 3);

    // …and once the last engine drops, only our handle remains.
    drop(survivor);
    assert_eq!(Arc::strong_count(&weights), 1);
}
