//! Property suite for the SORT tracker. The tracker is specified as a
//! *pure function of the detection stream* (DESIGN.md §17): same stream in,
//! bit-identical tracks out, regardless of how the caller happened to order
//! each frame's detections, and no identity may ever return from the dead
//! once `max_age` has passed. NaN-poisoned inputs must be shed at the door,
//! never absorbed into filter state.

use platter_imaging::NormBox;
use platter_yolo::{Detection, SortTracker, Track, TrackConfig};
use proptest::prelude::*;

/// Scores biased toward exact ties plus the non-finite poison values.
fn any_score() -> impl Strategy<Value = f32> {
    prop_oneof![
        0.0f32..=1.0,
        (0usize..4).prop_map(|i| i as f32 * 0.25),
        Just(f32::NAN),
        Just(f32::INFINITY),
        Just(f32::NEG_INFINITY),
    ]
}

fn any_det() -> impl Strategy<Value = Detection> {
    (0usize..3, any_score(), 0.2f32..=0.8, 0.2f32..=0.8, 0.05f32..=0.4, 0.05f32..=0.4)
        .prop_map(|(class, score, cx, cy, w, h)| Detection { class, score, bbox: NormBox::new(cx, cy, w, h) })
}

/// A detection stream: one inner vec per frame.
fn any_stream() -> impl Strategy<Value = Vec<Vec<Detection>>> {
    collection::vec(collection::vec(any_det(), 0..=6), 1..=16)
}

/// One track collapsed to raw bits: (id, class, score, bbox, hits).
type TrackBits = (u64, usize, u32, [u32; 4], u32);

/// Collapse a frame of tracks to raw bits so equality means *bit*-equality.
fn track_bits(tracks: &[Track]) -> Vec<TrackBits> {
    tracks
        .iter()
        .map(|t| {
            (t.id, t.class, t.score.to_bits(), [
                t.bbox.cx.to_bits(),
                t.bbox.cy.to_bits(),
                t.bbox.w.to_bits(),
                t.bbox.h.to_bits(),
            ], t.hits)
        })
        .collect()
}

fn run(cfg: TrackConfig, stream: &[Vec<Detection>]) -> Vec<Vec<TrackBits>> {
    let mut tracker = SortTracker::new(cfg).expect("valid config");
    stream.iter().map(|frame| track_bits(&tracker.step(frame))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Two trackers fed the identical stream agree to the bit. This is the
    /// replay guarantee the serve layer leans on: a session replayed from a
    /// recorded detection stream reproduces its track ids exactly.
    #[test]
    fn replay_is_bit_identical(stream in any_stream()) {
        let cfg = TrackConfig::default();
        prop_assert_eq!(run(cfg, &stream), run(cfg, &stream));
    }

    /// Association must not leak the caller's detection order: rotating
    /// every frame's detection list (a permutation that moves every element
    /// whenever there is more than one) changes nothing in the output.
    #[test]
    fn association_is_permutation_invariant(stream in any_stream(), by in 1usize..5) {
        let rotated: Vec<Vec<Detection>> = stream
            .iter()
            .map(|frame| {
                let n = frame.len().max(1);
                (0..frame.len()).map(|i| frame[(i + by) % n]).collect()
            })
            .collect();
        let cfg = TrackConfig::default();
        prop_assert_eq!(run(cfg, &stream), run(cfg, &rotated));
    }

    /// With `min_hits: 1` a live identity can stay silent for at most
    /// `max_age` consecutive frames (coasting unmatched). Any longer gap
    /// means the track was deleted — and a deleted id must never be
    /// reported again.
    #[test]
    fn no_identity_survives_a_gap_longer_than_max_age(
        stream in any_stream(),
        max_age in 1u32..4,
    ) {
        let cfg = TrackConfig { max_age, min_hits: 1, ..TrackConfig::default() };
        let mut tracker = SortTracker::new(cfg).expect("valid config");
        let mut last_seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (frame_idx, frame) in stream.iter().enumerate() {
            for t in tracker.step(frame) {
                if let Some(prev) = last_seen.insert(t.id, frame_idx) {
                    prop_assert!(
                        frame_idx - prev <= max_age as usize + 1,
                        "id {} reappeared after a gap of {} frames (max_age {})",
                        t.id, frame_idx - prev - 1, max_age
                    );
                }
            }
        }
    }

    /// Scripted resurrection attempt: hold one object steady, remove it for
    /// strictly more than `max_age` frames, then put the identical box back.
    /// The re-acquired object must carry a *fresh* id.
    #[test]
    fn a_track_dead_past_max_age_never_resurrects(
        max_age in 1u32..5,
        extra_gap in 1u32..4,
        warmup in 2usize..6,
    ) {
        let cfg = TrackConfig { max_age, min_hits: 1, ..TrackConfig::default() };
        let mut tracker = SortTracker::new(cfg).expect("valid config");
        let det = Detection { class: 0, score: 0.9, bbox: NormBox::new(0.5, 0.5, 0.2, 0.2) };

        let mut before = std::collections::HashSet::new();
        for _ in 0..warmup {
            for t in tracker.step(&[det]) {
                before.insert(t.id);
            }
        }
        prop_assert!(!before.is_empty(), "warmup frames must report the track");
        for _ in 0..(max_age + extra_gap) {
            prop_assert!(tracker.step(&[]).is_empty(), "nothing to report during the gap");
        }
        // Step until the object reports again (min_hits is 1, so this is
        // immediate) and check its identity is new.
        let reacquired = tracker.step(&[det]);
        prop_assert_eq!(reacquired.len(), 1);
        prop_assert!(
            !before.contains(&reacquired[0].id),
            "id {} resurrected after {} unmatched frames (max_age {})",
            reacquired[0].id, max_age + extra_gap, max_age
        );
    }

    /// Whatever poison the stream carries, reported tracks are finite and
    /// valid, ids are unique within a frame, and output is id-sorted.
    #[test]
    fn reported_tracks_are_finite_unique_and_sorted(stream in any_stream()) {
        let mut tracker = SortTracker::new(TrackConfig::default()).expect("valid config");
        for frame in &stream {
            let tracks = tracker.step(frame);
            for w in tracks.windows(2) {
                prop_assert!(w[0].id < w[1].id, "output must be strictly id-sorted");
            }
            for t in &tracks {
                prop_assert!(t.score.is_finite());
                prop_assert!(t.bbox.is_valid(), "reported bbox must be valid: {:?}", t.bbox);
                prop_assert!(t.hits >= 1);
            }
        }
    }
}
