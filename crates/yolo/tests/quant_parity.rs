//! Quantized-vs-f32 parity for the full YOLOv4 engine.
//!
//! The INT8 path ([`Yolov4::compile_inference_quantized`]) rewrites every
//! convolution of the compiled plan to the i8 GEMM with a fused
//! dequant+bias+activation epilogue; individual outputs legitimately move
//! by quantization rounding, so these tests use the **loosened** bounds
//! from `platter_tensor::parity` (loose worst-case, tight mean) rather
//! than the f32 compiled-vs-eager bounds. On top of head-level parity, the
//! suite checks the end-to-end contract the registry and the bench gate
//! rely on: finite detections, and mAP on the standard synthetic workload
//! within one point of the f32 engine's.

use platter_dataset::{Annotation, BatchLoader, ClassSet, DatasetSpec, LoaderConfig, Split, SyntheticDataset};
use platter_metrics::{evaluate, PredBox};
use platter_tensor::parity::assert_quantized_outputs_match;
use platter_tensor::{DType, QuantError, Tensor};
use platter_yolo::{decode_detections, nms, CompiledModel, NmsKind, YoloConfig, Yolov4};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic calibration batches in the input's natural `[0, 1]` range.
fn calibration_batches(size: usize, n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Tensor::rand_uniform(&[2, 3, size, size], 0.0, 1.0, &mut rng)).collect()
}

/// Unlike the f32 parity suite, these tests keep the model's *default* BN
/// statistics. `randomize_bn_stats` draws per-channel scales from a wide
/// uniform range, which de-normalizes activations far beyond anything
/// batch normalization would ever let a trained network produce — and
/// post-training quantization's error is proportional to each tensor's
/// dynamic range, so the adversarial stats compound through the ~30-conv
/// micro stack into errors no honest deployment would see (observed: mean
/// rel err 0.17 randomized vs 0.01 default). Folding correctness under
/// randomized BN is the f32 parity suite's job; quantization parity is
/// specified over realistically normalized activations.
#[test]
fn quantized_heads_track_f32_within_quant_bounds() {
    let model = Yolov4::new(YoloConfig::micro(10), 21);
    let size = model.config.input_size;
    let mut f32_engine = model.compile_inference();
    let mut q_engine = model
        .compile_inference_quantized(&calibration_batches(size, 3, 77))
        .expect("micro model quantizes");

    assert_eq!(f32_engine.dtype(), DType::F32);
    assert_eq!(q_engine.dtype(), DType::I8);
    assert_ne!(
        f32_engine.weights_fingerprint(),
        q_engine.weights_fingerprint(),
        "an i8 build must be a distinct weight identity from its f32 twin"
    );
    assert!(
        q_engine.plan().op_kinds().iter().any(|k| k.starts_with("qconv2d")),
        "quantized plan must contain i8 convolutions: {:?}",
        q_engine.plan().op_kinds()
    );

    let mut rng = StdRng::seed_from_u64(500);
    for batch in [1usize, 3] {
        let x = Tensor::rand_uniform(&[batch, 3, size, size], 0.0, 1.0, &mut rng);
        let f32_outs: Vec<Tensor> = f32_engine.run(&x).to_vec();
        let q_outs = q_engine.run(&x);
        assert_eq!(q_outs.len(), 3);
        assert_quantized_outputs_match(&f32_outs, q_outs);
    }
}

#[test]
fn quantized_compilation_requires_calibration() {
    let model = Yolov4::new(YoloConfig::micro(10), 22);
    let err = model.compile_inference_quantized(&[]).map(|_| "engine").unwrap_err();
    assert_eq!(err, QuantError::NoCalibrationPasses);
}

/// Run an engine over pre-rendered validation batches and decode+NMS each
/// image, exactly as the evaluation harness does.
fn detect_all(
    engine: &mut CompiledModel,
    cfg: &YoloConfig,
    batches: &[Tensor],
    conf: f32,
) -> Vec<Vec<PredBox>> {
    let mut preds = Vec::new();
    for b in batches {
        let decoded = decode_detections(engine.run(b), cfg, conf);
        for dets in decoded {
            let kept = nms(dets, 0.45, NmsKind::Diou);
            for d in &kept {
                assert!(d.score.is_finite(), "quantized path produced a non-finite score");
                assert!(d.bbox.is_valid(), "quantized path produced an invalid box");
            }
            preds.push(
                kept.iter().map(|d| PredBox { class: d.class, score: d.score, bbox: d.bbox }).collect(),
            );
        }
    }
    preds
}

#[test]
fn quantized_detections_are_finite_and_map_stays_within_one_point() {
    // The standard synthetic workload at test scale: micro IndianFood10,
    // 64 px, 80/20 split — the same composition the Table I experiment
    // evaluates, small enough for a unit test.
    let dataset =
        SyntheticDataset::generate(DatasetSpec::micro(ClassSet::indianfood10(), 24, 64, 7));
    let split = Split::eighty_twenty(dataset.len(), 0x5EED);
    let mut loader = BatchLoader::new(&dataset, &split.val, LoaderConfig::val(8, 64));
    let mut batches = Vec::new();
    let mut gt: Vec<Vec<Annotation>> = Vec::new();
    for _ in 0..loader.batches_per_epoch() {
        let b = loader.next_batch();
        batches.push(Tensor::from_vec(b.data, &b.shape));
        gt.extend(b.annotations);
    }

    let model = Yolov4::new(YoloConfig::micro(10), 23);
    let cfg = model.config.clone();
    let mut f32_engine = model.compile_inference();
    // Calibrate on the validation images themselves — the recording pass
    // the quantizer is specified against.
    let mut q_engine =
        model.compile_inference_quantized(&batches).expect("calibrated model quantizes");

    // Low confidence so the ranking metric sees a meaningful candidate set
    // even from this lightly-structured model.
    let f32_preds = detect_all(&mut f32_engine, &cfg, &batches, 0.01);
    let q_preds = detect_all(&mut q_engine, &cfg, &batches, 0.01);
    assert_eq!(f32_preds.len(), gt.len());
    assert_eq!(q_preds.len(), gt.len());

    let f32_eval = evaluate(&gt, &f32_preds, 10, 0.5);
    let q_eval = evaluate(&gt, &q_preds, 10, 0.5);
    assert!(f32_eval.map.is_finite() && q_eval.map.is_finite());
    // mAP is stored in [0, 1], so "one point" of the paper's percentage
    // scale is 0.01.
    let delta = (f32_eval.map - q_eval.map).abs();
    assert!(
        delta <= 0.01,
        "quantized mAP {:.4} drifted {delta:.4} from f32 mAP {:.4} (> 1 point)",
        q_eval.map,
        f32_eval.map
    );
}
