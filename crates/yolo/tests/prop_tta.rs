//! Property suite for the TTA merge: whatever the N per-view detection sets
//! contain — NaN scores, duplicates, degenerate boxes — the merged output is
//! finite, sane, and *invariant under permutation of the sets*. Detection
//! order across views is an execution detail (views could in principle run
//! in any order); the merge must not leak it into results.

use platter_imaging::NormBox;
use platter_yolo::{merge_tta, Detection, NmsKind};
use proptest::prelude::*;

/// Scores biased toward exact ties plus the non-finite poison values.
fn any_score() -> impl Strategy<Value = f32> {
    prop_oneof![
        0.0f32..=1.0,
        (0usize..4).prop_map(|i| i as f32 * 0.25),
        Just(f32::NAN),
        Just(f32::INFINITY),
        Just(f32::NEG_INFINITY),
    ]
}

fn any_det() -> impl Strategy<Value = Detection> {
    (0usize..3, any_score(), 0.2f32..=0.8, 0.2f32..=0.8, 0.05f32..=0.4, 0.05f32..=0.4)
        .prop_map(|(class, score, cx, cy, w, h)| Detection { class, score, bbox: NormBox::new(cx, cy, w, h) })
}

fn any_sets() -> impl Strategy<Value = Vec<Vec<Detection>>> {
    collection::vec(collection::vec(any_det(), 0..=8), 1..=4)
}

/// Deterministically rotate the outer set list (a permutation that moves
/// every element whenever there is more than one set).
fn rotated(sets: &[Vec<Detection>], by: usize) -> Vec<Vec<Detection>> {
    let n = sets.len();
    (0..n).map(|i| sets[(i + by) % n].clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn merge_is_invariant_under_set_permutation(
        sets in any_sets(),
        by in 0usize..4,
        kind in prop_oneof![Just(NmsKind::Greedy), Just(NmsKind::Diou)],
    ) {
        let base = merge_tta(sets.clone(), 0.45, kind);
        let perm = merge_tta(rotated(&sets, by % sets.len().max(1)), 0.45, kind);
        prop_assert_eq!(base, perm);
    }

    #[test]
    fn merged_output_is_finite_and_sane(
        sets in any_sets(),
        kind in prop_oneof![Just(NmsKind::Greedy), Just(NmsKind::Diou)],
    ) {
        let merged = merge_tta(sets, 0.45, kind);
        for d in &merged {
            prop_assert!(d.score.is_finite());
            prop_assert!(d.bbox.cx.is_finite() && d.bbox.cy.is_finite());
            prop_assert!(d.bbox.w > 0.0 && d.bbox.h > 0.0);
        }
        // Scores come out ranked (nms emits keep-order).
        for w in merged.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn merge_never_invents_detections(sets in any_sets()) {
        let total: usize = sets.iter().map(|s| s.len()).sum();
        let merged = merge_tta(sets, 0.45, NmsKind::Diou);
        prop_assert!(merged.len() <= total);
    }
}
