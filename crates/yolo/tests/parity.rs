//! Parity between the eager tape (`Graph::inference`) and the planned
//! execution engine (`Yolov4::compile_inference`), plus a structural check
//! that the memory planner never aliases two simultaneously-live values.
//!
//! A freshly initialised model has trivial batch-norm statistics
//! (mean 0, var 1, gamma 1, beta 0), which would make the conv+BN folding
//! a near no-op. Every parity test therefore randomises the BN statistics
//! and affine parameters first (via `platter_tensor::parity`, shared with
//! the baselines' parity suite), so folding is exercised with non-trivial
//! scales and shifts.

use platter_tensor::parity::{assert_outputs_match, randomize_bn_stats};
use platter_tensor::Tensor;
use platter_yolo::{YoloConfig, Yolov4};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Assert the compiled engine reproduces the eager head outputs for `batch`
/// images, under the shared relative-error bounds of
/// [`platter_tensor::parity::assert_outputs_match`].
///
/// The bounds are loose in absolute terms because BN folding reorders f32
/// rounding: the eager path divides the conv output by `√(var+ε)` after the
/// GEMM accumulation, while the folded path scales the weights before it, so
/// every product rounds differently. Through the ~60 conv layers the
/// reordering accumulates a heavy-tailed roundoff distribution (observed:
/// mean ≈ 1e-5, worst ≈ 8e-4 on the `small` profile). A systematic folding
/// bug shifts the *bulk* of outputs by orders of magnitude more than this,
/// which is what the tight mean bound catches.
fn assert_parity(config: YoloConfig, seed: u64, batch: usize, tol_worst: f32, tol_mean: f64) {
    let size = config.input_size;
    let model = Yolov4::new(config, seed);
    randomize_bn_stats(&model.parameters(), seed ^ 0xbeef);
    let mut rng = StdRng::seed_from_u64(seed + 100);
    let x = Tensor::rand_uniform(&[batch, 3, size, size], 0.0, 1.0, &mut rng);

    let eager = model.infer(&x);
    let mut engine = model.compile_inference();
    let compiled = engine.run(&x);

    assert_eq!(compiled.len(), 3);
    assert_outputs_match(&eager, compiled, tol_worst, tol_mean);
}

#[test]
fn micro_heads_match_eager_batch_1() {
    assert_parity(YoloConfig::micro(10), 11, 1, 2e-3, 5e-5);
}

#[test]
fn micro_heads_match_eager_batch_3() {
    assert_parity(YoloConfig::micro(10), 12, 3, 2e-3, 5e-5);
}

#[test]
fn small_heads_match_eager_batch_1() {
    assert_parity(YoloConfig::small(4), 13, 1, 2e-3, 5e-5);
}

#[test]
fn small_heads_match_eager_batch_3() {
    assert_parity(YoloConfig::small(4), 14, 3, 2e-3, 5e-5);
}

#[test]
fn compiled_runs_are_deterministic_across_calls_and_batches() {
    let model = Yolov4::new(YoloConfig::micro(6), 21);
    randomize_bn_stats(&model.parameters(), 22);
    let mut rng = StdRng::seed_from_u64(23);
    let x1 = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, &mut rng);
    let x3 = Tensor::rand_uniform(&[3, 3, 64, 64], 0.0, 1.0, &mut rng);

    let mut engine = model.compile_inference();
    let first: Vec<Tensor> = engine.run(&x1).to_vec();
    // Re-batching resizes the arena; running x1 again afterwards must still
    // reproduce the original outputs exactly (no stale data leaks through).
    let _ = engine.run(&x3);
    let again = engine.run(&x1);
    for (a, b) in first.iter().zip(again) {
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.as_slice(), b.as_slice(), "compiled run is not deterministic");
    }
}

#[test]
fn planner_never_aliases_live_values_in_the_yolo_plan() {
    let model = Yolov4::new(YoloConfig::micro(10), 31);
    let engine = model.compile_inference();
    let slots = engine.plan().slot_map();
    // Any two values sharing an arena slot must have disjoint live ranges
    // [def, last_use].
    for (i, a) in slots.iter().enumerate() {
        for b in &slots[i + 1..] {
            if a.slot != b.slot {
                continue;
            }
            let disjoint = a.last_use < b.def || b.last_use < a.def;
            assert!(
                disjoint,
                "values {} [{}..{}] and {} [{}..{}] overlap in slot {}",
                a.value, a.def, a.last_use, b.value, b.def, b.last_use, a.slot
            );
        }
    }
    // Sanity: the plan actually reuses memory (fewer slots than values).
    assert!(
        engine.plan().num_slots() < engine.plan().num_values(),
        "expected slot reuse: {} slots for {} values",
        engine.plan().num_slots(),
        engine.plan().num_values()
    );
}
