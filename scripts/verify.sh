#!/usr/bin/env bash
# Full verification: release build, all tests, and lint-clean clippy.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== eager vs compiled parity =="
cargo test -q --release -p platter-yolo --test parity

echo "== serving fault-injection + input-fuzz suites =="
cargo test -q --release -p platter-serve --test fault_injection
cargo test -q --release -p platter-serve --test prop_validation

echo "== compiled inference smoke (writes results/BENCH_inference.json) =="
cargo run -q --release -p platter-bench --bin bench_inference

echo "== serving smoke (writes results/BENCH_serve.json) =="
cargo run -q --release -p platter-bench --bin bench_serve -- --smoke

echo "== verify OK =="
