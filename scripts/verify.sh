#!/usr/bin/env bash
# Full verification: release build, all tests, and lint-clean clippy.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== single-definition graph gate (no hand-written forward/compile pairs) =="
# Topology lives in one generic `trace` per layer (DESIGN.md §11). The only
# legal Graph-forward / Planner-compile implementations are the two Trace
# backends inside crates/tensor. Anything else is a reintroduced duplicate.
violations=$(git ls-files 'crates/*/src/**/*.rs' 'crates/*/src/*.rs' \
  | grep -v '^crates/tensor/' \
  | xargs -r grep -l -F 'fn compile(&self, p: &mut Planner' || true)
if [ -n "$violations" ]; then
  echo "hand-written Planner compile methods outside crates/tensor:" >&2
  echo "$violations" >&2
  exit 1
fi
pairs=$(git ls-files 'crates/tensor/src/**/*.rs' 'crates/tensor/src/*.rs' \
  | grep -v '^crates/tensor/src/trace.rs$' \
  | xargs -r grep -l -F 'fn forward(&self, g: &mut Graph' || true)
if [ -n "$pairs" ]; then
  echo "Graph-forward methods outside the Trace backend in crates/tensor:" >&2
  echo "$pairs" >&2
  exit 1
fi

echo "== eager vs compiled parity (YOLOv4 + baselines) =="
cargo test -q --release -p platter-yolo --test parity
cargo test -q --release -p platter-baselines --test parity

echo "== golden plan structure (fusion decisions) =="
cargo test -q --release -p platter-baselines --test golden_plan

echo "== serving fault-injection + input-fuzz suites =="
cargo test -q --release -p platter-serve --test fault_injection
cargo test -q --release -p platter-serve --test prop_validation

echo "== compiled inference smoke (writes results/BENCH_inference.json) =="
cargo run -q --release -p platter-bench --bin bench_inference

echo "== serving smoke (writes results/BENCH_serve.json) =="
cargo run -q --release -p platter-bench --bin bench_serve -- --smoke

echo "== verify OK =="
