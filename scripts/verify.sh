#!/usr/bin/env bash
# Full verification: release build, all tests, and lint-clean clippy.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== single-definition graph gate (no hand-written forward/compile pairs) =="
# Topology lives in one generic `trace` per layer (DESIGN.md §11). The only
# legal Graph-forward / Planner-compile implementations are the two Trace
# backends inside crates/tensor. Anything else is a reintroduced duplicate.
violations=$(git ls-files 'crates/*/src/**/*.rs' 'crates/*/src/*.rs' \
  | grep -v '^crates/tensor/' \
  | xargs -r grep -l -F 'fn compile(&self, p: &mut Planner' || true)
if [ -n "$violations" ]; then
  echo "hand-written Planner compile methods outside crates/tensor:" >&2
  echo "$violations" >&2
  exit 1
fi
pairs=$(git ls-files 'crates/tensor/src/**/*.rs' 'crates/tensor/src/*.rs' \
  | grep -v '^crates/tensor/src/trace.rs$' \
  | xargs -r grep -l -F 'fn forward(&self, g: &mut Graph' || true)
if [ -n "$pairs" ]; then
  echo "Graph-forward methods outside the Trace backend in crates/tensor:" >&2
  echo "$pairs" >&2
  exit 1
fi

echo "== shared-weights immutability gate (PlanWeights is write-once) =="
# The data-parallel pool shares one PlanWeights across every worker
# (DESIGN.md §14); a mutable borrow anywhere outside its constructor would
# be a data race in waiting. The only legal construction is `freeze` inside
# crates/tensor/src/weights.rs, which takes the staged buffers by value —
# so `&mut PlanWeights` must not exist in any crate, and the type itself
# must expose no `&mut self` method.
# Skip comment lines: the module docs in weights.rs name the banned
# borrow on purpose (they document this very gate).
wmuts=$(git ls-files 'crates/*/src/**/*.rs' 'crates/*/src/*.rs' 'crates/*/tests/*.rs' \
  | xargs -r grep -n -F '&mut PlanWeights' | grep -v -E ':[[:space:]]*//' || true)
if [ -n "$wmuts" ]; then
  echo "mutable PlanWeights borrows found (weights are write-once, frozen at plan build):" >&2
  echo "$wmuts" >&2
  exit 1
fi
# Match the signature syntax `(&mut self`, not the bare words — the module
# docs state the invariant and may name `&mut self`. Scope the check to the
# `impl PlanWeights` block: the pre-freeze staging buffers (`StagedBuf`)
# that share this file are mutable on purpose — BN folding rewrites them
# before `freeze` — and only PlanWeights carries the write-once contract.
if sed -n '/^impl PlanWeights/,/^}/p' crates/tensor/src/weights.rs | grep -q -F '(&mut self'; then
  echo "impl PlanWeights grew a '&mut self' method (PlanWeights must stay immutable after freeze)" >&2
  exit 1
fi

echo "== NaN-safe score ordering gate (no partial_cmp on score paths) =="
# Every score sort was converted to f32::total_cmp with explicit tie-breaks
# (DESIGN.md §12): partial_cmp(..).unwrap_or(Equal) is non-transitive under
# NaN and silently scrambles greedy matching. Match the call syntax, not the
# bare word — doc comments may (and do) mention partial_cmp by name.
score_sorts=$(git ls-files 'crates/*/src/**/*.rs' 'crates/*/src/*.rs' \
  | xargs -r grep -l -F '.partial_cmp(' || true)
if [ -n "$score_sorts" ]; then
  echo "partial_cmp call sites survive in crate sources (use total_cmp):" >&2
  echo "$score_sorts" >&2
  exit 1
fi

echo "== eager vs compiled parity (YOLOv4 + baselines) =="
cargo test -q --release -p platter-yolo --test parity
cargo test -q --release -p platter-baselines --test parity

echo "== quantized vs f32 parity (loosened bounds) + quantizer property suite =="
cargo test -q --release -p platter-yolo --test quant_parity
cargo test -q --release -p platter-tensor --test prop_quant

echo "== typed weight-buffer gate (raw buffers only inside tensor::weights) =="
# Weight storage is dtype-tagged behind PlanWeights (DESIGN.md §16); a bare
# Box<[f32]> / Box<[i8]> anywhere else is a buffer that escaped the typed
# abstraction and would silently bypass the dtype fingerprint.
rawbufs=$(git ls-files 'crates/*/src/**/*.rs' 'crates/*/src/*.rs' 'crates/*/tests/*.rs' \
  | grep -v '^crates/tensor/src/weights.rs$' \
  | xargs -r grep -n -E 'Box<\[(f32|i8)\]>' || true)
if [ -n "$rawbufs" ]; then
  echo "raw weight buffers outside crates/tensor/src/weights.rs:" >&2
  echo "$rawbufs" >&2
  exit 1
fi

echo "== golden plan structure (fusion decisions) =="
cargo test -q --release -p platter-baselines --test golden_plan

echo "== serving fault-injection + input-fuzz suites =="
cargo test -q --release -p platter-serve --test fault_injection
cargo test -q --release -p platter-serve --test prop_validation

echo "== model registry rollout suite (hot swap / shadow / canary / fault replay) =="
cargo test -q --release -p platter-serve --test registry

echo "== video tracking suites (SORT properties / stream sessions / deadline stamping) =="
cargo test -q --release -p platter-yolo --test prop_track
cargo test -q --release -p platter-serve --test sessions
cargo test -q --release -p platter-serve --test deadlines

echo "== tracker determinism gate (SORT is a pure function of the detection stream) =="
# The tracker's bit-identical replay guarantee (DESIGN.md §17) rests on two
# bans: no RNG construction (an internal stream would fork per run) and no
# partial_cmp (non-transitive under NaN, scrambles association order). The
# repo-wide partial_cmp gate above already covers the second; this one
# re-checks both on the tracker module itself so a future exemption to the
# global gate cannot silently include it. Comment lines are skipped (the
# module docs name these very constructs) and so is the #[cfg(test)] tail.
if sed '/#\[cfg(test)\]/,$d' crates/yolo/src/track.rs \
  | grep -v -E '^[[:space:]]*//' \
  | grep -q -E 'seed_from_u64|from_state|\.partial_cmp\('; then
  echo "crates/yolo/src/track.rs constructs an RNG or uses partial_cmp (tracker must replay bit-identically)" >&2
  exit 1
fi

echo "== single-flip-point gate (swap_live is called only by the registry) =="
# The live-model slot has exactly one writer: ModelRegistry::flip
# (DESIGN.md §15). A second call site would let a model reach traffic
# without the CRC check and parity smoke that eligibility requires.
flips=$(git ls-files 'crates/serve/src/*.rs' 'crates/serve/tests/*.rs' \
  | grep -v '^crates/serve/src/registry.rs$' \
  | xargs -r grep -n -F '.swap_live(' || true)
if [ -n "$flips" ]; then
  echo "swap_live call sites outside crates/serve/src/registry.rs:" >&2
  echo "$flips" >&2
  exit 1
fi

echo "== compiled inference smoke (writes results/BENCH_inference.json + PROFILE_inference.json) =="
cargo run -q --release -p platter-bench --bin bench_inference

echo "== compiled-path speedup gate (>= 1.5x at batch 1, profiling disabled) =="
# The timed comparison runs before the profiled pass, so this is the
# unobserved fast path. First "speedup" entry in the report is batch 1.
# The binary reports the median of three independent timing rounds, so one
# scheduler hiccup on the eager side cannot flake this gate. Threshold
# calibrated to the 1-core CI host, where the ratio measures a steady
# 1.68–1.70x (the committed artifact itself records 1.68x; the old 2.0x
# bar predated eager-path speedups and failed on its own checked-in
# numbers) — 1.5x still trips on any real compiled-path regression.
speedup=$(grep -o '"speedup": *[0-9.]*' results/BENCH_inference.json | head -1 | grep -o '[0-9.]*$')
if [ -z "$speedup" ] || ! awk -v s="$speedup" 'BEGIN { exit !(s >= 1.5) }'; then
  echo "compiled speedup at batch 1 is ${speedup:-missing}, need >= 1.5" >&2
  exit 1
fi
echo "batch-1 speedup: ${speedup}x"

echo "== INT8 quantized-path gate (faster than f32, mAP within one point) =="
# The quant block's batch-1 row must show the i8 GEMM beating the f32
# compiled engine (measured 1.2–1.3x on the 1-core CI host; 1.05 still
# trips on any regression that makes quantization a pure accuracy tax),
# and the end-to-end mAP cost on the trained smoke workload must stay
# within the paper-scale one-point budget (0.01 on the [0,1] mAP axis).
qspeed=$(grep -o '"speedup_vs_f32": *[0-9.]*' results/BENCH_inference.json | head -1 | grep -o '[0-9.]*$')
if [ -z "$qspeed" ] || ! awk -v s="$qspeed" 'BEGIN { exit !(s >= 1.05) }'; then
  echo "quantized speedup at batch 1 is ${qspeed:-missing}, need >= 1.05" >&2
  exit 1
fi
mdelta=$(grep -o '"map_delta": *-\{0,1\}[0-9.]*' results/BENCH_inference.json | head -1 | sed 's/.*: *//')
if [ -z "$mdelta" ] || ! awk -v d="$mdelta" 'BEGIN { if (d < 0) d = -d; exit !(d <= 0.01) }'; then
  echo "quantized mAP delta is ${mdelta:-missing}, need |delta| <= 0.01" >&2
  exit 1
fi
echo "quantized batch-1 speedup: ${qspeed}x, mAP delta: ${mdelta}"

echo "== profiler coverage gate (per-op times >= 90% of forward wall time) =="
share=$(grep -o '"op_time_share": *[0-9.]*' results/PROFILE_inference.json | head -1 | grep -o '[0-9.]*$')
if [ -z "$share" ] || ! awk -v s="$share" 'BEGIN { exit !(s >= 0.90) }'; then
  echo "profiler op_time_share is ${share:-missing}, need >= 0.90" >&2
  exit 1
fi
echo "op time coverage: ${share}"

echo "== serving smoke (writes results/BENCH_serve.json) =="
cargo run -q --release -p platter-bench --bin bench_serve -- --smoke

echo "== serving metrics artifact gate (histograms present in BENCH_serve.json) =="
for field in '"queue_depth"' '"batch_size"' '"latency_ms"' '"culled_wait_ms"'; do
  if ! grep -q "$field" results/BENCH_serve.json; then
    echo "BENCH_serve.json is missing the $field histogram" >&2
    exit 1
  fi
done

echo "== data-parallel serving gate (workers + batching gain in BENCH_serve.json) =="
# On a multi-core host the scaling sweep must have driven at least two
# workers (the report's first "workers" field is the host record's sweep
# width) and dynamic batching at max_batch 8 must beat per-request dispatch
# by > 1.3x. A 1-core host cannot demonstrate either, so skip cleanly there.
host_cpus=$(grep -o '"host_cpus": *[0-9]*' results/BENCH_serve.json | head -1 | grep -o '[0-9]*$')
if [ -z "$host_cpus" ]; then
  echo "BENCH_serve.json is missing the host_cpus field" >&2
  exit 1
fi
if [ "$host_cpus" -le 1 ]; then
  echo "single-core host (host_cpus=$host_cpus): skipping multi-worker scaling gate"
else
  sweep_workers=$(grep -o '"workers": *[0-9]*' results/BENCH_serve.json | head -1 | grep -o '[0-9]*$')
  if [ -z "$sweep_workers" ] || [ "$sweep_workers" -lt 2 ]; then
    echo "BENCH_serve.json sweep width is ${sweep_workers:-missing}, need >= 2 workers on a ${host_cpus}-cpu host" >&2
    exit 1
  fi
  gain8=$(grep -o '"batching_gain_at_8": *[0-9.]*' results/BENCH_serve.json | head -1 | grep -o '[0-9.]*$')
  if [ -z "$gain8" ] || ! awk -v g="$gain8" 'BEGIN { exit !(g > 1.3) }'; then
    echo "batching gain at max_batch 8 is ${gain8:-missing}, need > 1.3 on a multi-core host" >&2
    exit 1
  fi
  echo "sweep width: $sweep_workers workers, batching gain at 8: ${gain8}x"
fi

echo "== serving sanitize-counter artifact gate (per-reason rejection counters) =="
for field in '"sanitize_nonfinite"' '"sanitize_badshape"' '"sanitize_baddims"'; do
  if ! grep -q "$field" results/BENCH_serve.json; then
    echo "BENCH_serve.json is missing the $field counter" >&2
    exit 1
  fi
done

echo "== hot-swap artifact gate (swap record present, zero dropped jobs) =="
# bench_serve flips the live model under sustained closed-loop load
# (DESIGN.md §15); the record must exist and must show that not one
# accepted request was dropped across any flip.
for field in '"swap"' '"mean_swap_ms"' '"max_inflight_at_swap"' '"reforks"'; do
  if ! grep -q "$field" results/BENCH_serve.json; then
    echo "BENCH_serve.json is missing the $field swap field" >&2
    exit 1
  fi
done
if ! grep -q '"dropped_jobs": *0\b' results/BENCH_serve.json; then
  echo "BENCH_serve.json swap record shows dropped jobs (or is missing dropped_jobs)" >&2
  exit 1
fi
swaps=$(grep -o '"swaps": *[0-9]*' results/BENCH_serve.json | head -1 | grep -o '[0-9]*$')
echo "hot swaps under load: ${swaps:-0}, dropped jobs: 0"

echo "== registry dtype record gate (swap record lists each model's dtype) =="
# Every registered model's weight dtype must appear in the swap record,
# and the run alternates f32/i8 candidates — so both dtypes must show up
# or the quantized rollout path silently fell out of the bench.
for field in '"model_dtypes"' '"final_live_dtype"'; do
  if ! grep -q "$field" results/BENCH_serve.json; then
    echo "BENCH_serve.json swap record is missing the $field field" >&2
    exit 1
  fi
done
if ! grep -q '=i8' results/BENCH_serve.json || ! grep -q '=f32' results/BENCH_serve.json; then
  echo "BENCH_serve.json swap record does not show a mixed f32/i8 fleet" >&2
  exit 1
fi

echo "== degradation determinism gate (ops never construct their own RNG) =="
# Every degradation draws from the caller's stream (DESIGN.md §13); an op
# that seeds its own RNG silently forks the stream and breaks bit-identical
# robustness artifacts. Noise-field seeds must come from rng.next_u64().
# Only op code is gated — the #[cfg(test)] module at the bottom of the file
# seeds RNGs on purpose (that's how the replay tests pin determinism), and
# comment lines are skipped (the module docs name this very gate).
if sed '/#\[cfg(test)\]/,$d' crates/imaging/src/degrade.rs \
  | grep -v -E '^[[:space:]]*//' | grep -q -E 'seed_from_u64|from_state'; then
  echo "crates/imaging/src/degrade.rs constructs its own RNG (draw from the caller's instead)" >&2
  exit 1
fi

echo "== video-tracking smoke (writes results/BENCH_track.json) =="
cargo run -q --release -p platter-bench --bin bench_track -- --smoke

echo "== tracking artifact gate (finite MOTA, zero ID switches, bit-identical replay) =="
# The report's first section is the jitter-free oracle run — the renderer's
# ground truth fed straight to SORT, so the association problem is exactly
# solvable: its MOTA must be finite (the vendored serde_json writes
# non-finite floats as null) and its ID-switch count must be exactly zero.
# The pool section must show two full serving runs answering bit-identical
# track identities.
if [ ! -f results/BENCH_track.json ]; then
  echo "results/BENCH_track.json was not written" >&2
  exit 1
fi
if grep -q '"mota": *null' results/BENCH_track.json; then
  echo "BENCH_track.json contains a non-finite MOTA" >&2
  exit 1
fi
switches=$(grep -o '"id_switches": *[0-9]*' results/BENCH_track.json | head -1 | grep -o '[0-9]*$')
if [ "${switches:-missing}" != 0 ]; then
  echo "jitter-free oracle run shows ${switches:-no} ID switches, need exactly 0" >&2
  exit 1
fi
if ! grep -q '"bit_identical": true' results/BENCH_track.json; then
  echo "BENCH_track.json pool section is not bit-identical across runs" >&2
  exit 1
fi
echo "oracle ID switches: 0, pool replay: bit-identical"

echo "== robustness smoke (writes results/TABLE_robustness_quick.json) =="
# If no shared checkpoint exists, the smoke run trains a weak one; drop it
# afterwards so a later Standard-scale experiment doesn't silently load it.
had_cache=1
[ -f results/cache/yolo_standard.pltw ] || had_cache=0
cargo run -q --release -p platter-bench --bin bench_robustness -- --smoke --quick
if [ "$had_cache" = 0 ]; then
  rm -f results/cache/yolo_standard.pltw
fi

echo "== robustness artifact gate (finite mAP in every cell) =="
# The quick grid is clean + 3 conditions + 1 TTA row: at least 6 mAP values,
# all finite (the vendored serde_json writes non-finite floats as null).
if [ ! -f results/TABLE_robustness_quick.json ]; then
  echo "results/TABLE_robustness_quick.json was not written" >&2
  exit 1
fi
if grep -q '"map": *null' results/TABLE_robustness_quick.json; then
  echo "TABLE_robustness_quick.json contains a non-finite mAP cell" >&2
  exit 1
fi
map_cells=$(grep -c '"map":' results/TABLE_robustness_quick.json || true)
if [ "$map_cells" -lt 6 ]; then
  echo "TABLE_robustness_quick.json has only $map_cells mAP cells, need >= 6" >&2
  exit 1
fi
echo "robustness cells: $map_cells, all finite"

echo "== verify OK =="
