#!/usr/bin/env bash
# Regenerate every table/figure of the paper plus the ablations.
# Usage: scripts/run_all_experiments.sh [--smoke|--extended]
# The first run trains and caches the shared YOLOv4 checkpoint under
# results/cache/; pass --retrain to refresh it.
set -euo pipefail
SCALE="${1:-}"
run() { cargo run -p platter-bench --release --bin "$1" -- ${SCALE} "${@:2}"; }

run table4_indianfood20          # dataset stats (fast, no training)
run table1_per_class_ap          # trains + caches the shared model
run fig5_confusion_matrix
run fig7_pr_curves
run fig4_fig6_predictions
run table3_model_comparison      # + SSD & legacy training
run table2_map_vs_iterations     # the long sweep
run ablation_transfer
run ablation_mosaic
run ablation_loss
echo "all artifacts in results/"
