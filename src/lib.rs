//! # platter
//!
//! Umbrella crate for the reproduction of *"Object Detection in Indian Food
//! Platters using Transfer Learning with YOLOv4"* (ICDE 2022). It re-exports
//! every subsystem so examples and downstream users need a single
//! dependency:
//!
//! - [`tensor`] — from-scratch autograd/conv-net substrate
//! - [`imaging`] — synthetic Indian-food renderer + augmentations
//! - [`dataset`] — IndianFood10/IndianFood20 datasets and loaders
//! - [`yolo`] — the YOLOv4 detector, training and transfer learning
//! - [`baselines`] — SSD/legacy/classifier comparators
//! - [`metrics`] — Padilla-style AP/mAP/F1/confusion evaluation
//! - [`serve`] — hardened serving runtime around the compiled detector
//!
//! See `README.md` for the quickstart and `DESIGN.md` for the substitution
//! table mapping each paper component to a module here.

pub use platter_baselines as baselines;
pub use platter_dataset as dataset;
pub use platter_imaging as imaging;
pub use platter_metrics as metrics;
pub use platter_serve as serve;
pub use platter_tensor as tensor;
pub use platter_yolo as yolo;
